package bundle

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/fault"
)

// DefaultMaxBytes is the packing roll-over threshold callers use when
// they have no better number: a new bundle is started once the current
// one exceeds this.
const DefaultMaxBytes = 256 << 20

// FileName returns the data-file name for a bundle id.
func FileName(id uint64) string { return fmt.Sprintf("bundle-%08x%s", id, Ext) }

// ParseID extracts the bundle id from a data-file name (base name, with
// or without directory). ok is false for non-bundle names.
func ParseID(name string) (id uint64, ok bool) {
	base := filepath.Base(name)
	s, ok := strings.CutPrefix(base, "bundle-")
	if !ok {
		return 0, false
	}
	s, ok = strings.CutSuffix(s, Ext)
	if !ok {
		return 0, false
	}
	id, err := strconv.ParseUint(s, 16, 64)
	return id, err == nil
}

// Bundle is one opened bundle file serving reads by pread. All methods
// are safe for concurrent use: lookups take a read lock over the needle
// map, payload reads go through os.File.ReadAt (safe concurrently), and
// the only mutation — Delete's tombstone append — runs under the write
// lock.
type Bundle struct {
	path string
	id   uint64
	fs   fault.FS

	mu       sync.RWMutex
	f        fault.File
	size     int64
	dead     int64
	refs     map[string]Ref
	rebuilt  bool // index was rebuilt by scanning at open
	readOnly bool // data file opened read-only; Delete refuses
}

// Open opens the bundle at path for serving. The paired needle index is
// loaded when it is intact and size-matched to the data file; otherwise
// — missing, torn, version-skewed, or stale after a crash — the index
// is rebuilt by scanning needle headers (payload CRCs verified), a torn
// tail is truncated away, and the fresh index is persisted. Open falls
// back to read-only service when the data file is not writable.
func Open(path string) (*Bundle, error) {
	return OpenFS(fault.OS, path)
}

// OpenFS is Open over an injectable filesystem.
func OpenFS(fsys fault.FS, path string) (*Bundle, error) {
	fsys = fault.Get(fsys)
	id, ok := ParseID(path)
	if !ok {
		return nil, fmt.Errorf("bundle: %q is not a bundle file name", path)
	}
	readOnly := false
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		f, err = fsys.Open(path)
		if err != nil {
			return nil, fmt.Errorf("bundle: %w", err)
		}
		readOnly = true
	}
	b := &Bundle{path: path, id: id, fs: fsys, f: f, readOnly: readOnly}
	fail := func(err error) (*Bundle, error) {
		f.Close()
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		return fail(fmt.Errorf("bundle: %w", err))
	}
	b.size = fi.Size()
	if err := b.checkFileHeader(); err != nil {
		return fail(err)
	}
	if refs, dead, err := loadIndex(fsys, IndexPath(path), b.size); err == nil {
		b.refs, b.dead = refs, dead
		return b, nil
	}
	if err := b.rebuildIndex(); err != nil {
		return fail(err)
	}
	return b, nil
}

// checkFileHeader validates the data file's magic and version.
func (b *Bundle) checkFileHeader() error {
	hdr := make([]byte, headerOff)
	if _, err := b.f.ReadAt(hdr, 0); err != nil {
		return fmt.Errorf("%w: bundle %s: unreadable file header: %v", ErrCorrupt, b.path, err)
	}
	if string(hdr[:len(fileMagic)]) != fileMagic {
		return fmt.Errorf("%w: bundle %s: bad magic", ErrCorrupt, b.path)
	}
	if hdr[len(fileMagic)] != version {
		return fmt.Errorf("%w: bundle %s: unsupported version %d", ErrCorrupt, b.path, hdr[len(fileMagic)])
	}
	return nil
}

// rebuildIndex reconstructs the needle map by scanning headers from the
// start of the data file, truncates any torn tail, and persists the
// fresh index. Called with exclusive access (during Open).
func (b *Bundle) rebuildIndex() error {
	if _, err := b.f.Seek(headerOff, io.SeekStart); err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	refs := make(map[string]Ref)
	var dead int64
	good, err := scanNeedles(b.f, func(e scanEntry) {
		if old, ok := refs[e.name]; ok {
			dead += old.size()
			delete(refs, e.name)
		}
		if e.tomb {
			dead += e.ref.size() // the tombstone itself is overhead
		} else {
			refs[e.name] = e.ref
		}
	})
	if err != nil {
		return err
	}
	if good < b.size {
		// Torn tail: a partial needle after the last intact one. Drop it
		// so future tombstone appends extend from a clean boundary.
		if b.readOnly {
			return fmt.Errorf("%w: bundle %s: torn tail at offset %d on read-only media", ErrCorrupt, b.path, good)
		}
		if err := b.f.Truncate(good); err != nil {
			return fmt.Errorf("bundle: truncating torn tail of %s: %w", b.path, err)
		}
		if err := b.f.Sync(); err != nil {
			return fmt.Errorf("bundle: %w", err)
		}
		b.size = good
	}
	b.refs, b.dead, b.rebuilt = refs, dead, true
	if !b.readOnly {
		// Best-effort: serving works from memory either way, and the next
		// open repeats the scan if this write does not land.
		_ = writeIndex(b.fs, IndexPath(b.path), b.refs, b.size, b.dead)
	}
	return nil
}

// ID returns the bundle's numeric id (from its file name).
func (b *Bundle) ID() uint64 { return b.id }

// Path returns the data-file path.
func (b *Bundle) Path() string { return b.path }

// Rebuilt reports whether Open had to reconstruct the index by scanning
// needle headers (missing, corrupt, or stale index file).
func (b *Bundle) Rebuilt() bool { return b.rebuilt }

// Len returns the number of live documents.
func (b *Bundle) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.refs)
}

// Names returns the live document names, sorted.
func (b *Bundle) Names() []string {
	b.mu.RLock()
	names := make([]string, 0, len(b.refs))
	for name := range b.refs {
		names = append(names, name)
	}
	b.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Ref returns the needle locator for a live document.
func (b *Bundle) Ref(name string) (Ref, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	r, ok := b.refs[name]
	return r, ok
}

// pread reads [off, off+n) from the data file under the read lock —
// concurrent preads proceed together; only Delete's tail append and
// Close exclude them — and verifies the payload CRC from the needle
// header.
func (b *Bundle) pread(name string, off, n int64, wantCRC uint32, what string) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.f == nil {
		return nil, fmt.Errorf("bundle: %s is closed", b.path)
	}
	buf := make([]byte, n)
	if _, err := b.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("bundle: reading %s of %q from %s: %w", what, name, b.path, err)
	}
	if crc32.ChecksumIEEE(buf) != wantCRC {
		return nil, fmt.Errorf("%w: bundle %s: %s payload of %q fails CRC", ErrCorrupt, b.path, what, name)
	}
	return buf, nil
}

// Archive preads the archive payload of a live document and verifies its
// CRC. The read is coordination-free: sealed payload bytes never move.
func (b *Bundle) Archive(name string) ([]byte, error) {
	r, ok := b.Ref(name)
	if !ok {
		return nil, fmt.Errorf("bundle: %s: no document %q", b.path, name)
	}
	return b.pread(name, r.PayloadOff, r.ArchiveLen, r.archiveCRC, "archive")
}

// Sidecar preads the synopsis-sidecar payload of a live document,
// verifying its CRC. ok is false when the document exists but was packed
// without a sidecar.
func (b *Bundle) Sidecar(name string) (data []byte, ok bool, err error) {
	r, found := b.Ref(name)
	if !found {
		return nil, false, fmt.Errorf("bundle: %s: no document %q", b.path, name)
	}
	if r.SidecarLen == 0 {
		return nil, false, nil
	}
	buf, err := b.pread(name, r.PayloadOff+r.ArchiveLen, r.SidecarLen, r.sidecarCRC, "sidecar")
	if err != nil {
		return nil, false, err
	}
	return buf, true, nil
}

// Delete appends a tombstone needle for name, fsyncs the data file and
// rewrites the index. The document's payload bytes become dead weight
// the auditor reclaims once the bundle's dead ratio crosses its
// threshold. Deleting a name the bundle does not hold is a no-op.
func (b *Bundle) Delete(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	old, ok := b.refs[name]
	if !ok {
		return nil
	}
	if b.f == nil {
		return fmt.Errorf("bundle: %s is closed", b.path)
	}
	if b.readOnly {
		return fmt.Errorf("bundle: %s is read-only; cannot delete %q", b.path, name)
	}
	frame, _ := appendNeedle(nil, name, true, nil, nil)
	if _, err := b.f.WriteAt(frame, b.size); err != nil {
		return fmt.Errorf("bundle: appending tombstone for %q to %s: %w", name, b.path, err)
	}
	if err := b.f.Sync(); err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	b.size += int64(len(frame))
	b.dead += old.size() + int64(len(frame))
	delete(b.refs, name)
	// The tombstone is durable; a failed index rewrite only costs the
	// next open a rebuild scan (the size pairing check rejects the stale
	// index), so it is surfaced but nothing is rolled back.
	if err := writeIndex(b.fs, IndexPath(b.path), b.refs, b.size, b.dead); err != nil {
		return fmt.Errorf("bundle: rewriting index of %s: %w", b.path, err)
	}
	return nil
}

// VerifyIndex reports whether the paired index file currently loads
// clean and matches the data file — the scrubber's freshness probe.
func (b *Bundle) VerifyIndex() error {
	b.mu.RLock()
	size := b.size
	b.mu.RUnlock()
	_, _, err := loadIndex(b.fs, IndexPath(b.path), size)
	return err
}

// RewriteIndex persists a fresh index from the in-memory needle map —
// the scrubber's repair for a corrupt or stale index file.
func (b *Bundle) RewriteIndex() error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return writeIndex(b.fs, IndexPath(b.path), b.refs, b.size, b.dead)
}

// Size returns the data file's size in bytes.
func (b *Bundle) Size() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.size
}

// DeadBytes returns the bytes held by replaced or tombstoned needles
// (and the tombstones themselves).
func (b *Bundle) DeadBytes() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.dead
}

// DeadRatio returns dead bytes as a fraction of the data file.
func (b *Bundle) DeadRatio() float64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.size <= headerOff {
		return 0
	}
	return float64(b.dead) / float64(b.size)
}

// CopyLiveTo appends every live needle of b to w — the auditor's rewrite
// pass. Payloads are pread and CRC-verified on the way through.
func (b *Bundle) CopyLiveTo(w *Writer) error {
	for _, name := range b.Names() {
		archive, err := b.Archive(name)
		if err != nil {
			return err
		}
		sidecar, _, err := b.Sidecar(name)
		if err != nil {
			return err
		}
		if err := w.Add(name, archive, sidecar); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the data-file handle. In-flight reads racing Close are
// the caller's responsibility (the store drops the bundle from its
// catalog first).
func (b *Bundle) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return nil
	}
	err := b.f.Close()
	b.f = nil
	return err
}

// Remove closes the bundle and unlinks its data and index files — the
// auditor's final step after a rewrite, or the removal of an emptied
// bundle.
func (b *Bundle) Remove() error {
	if err := b.Close(); err != nil {
		return err
	}
	if err := b.fs.Remove(b.path); err != nil && !os.IsNotExist(err) {
		return err
	}
	if err := b.fs.Remove(IndexPath(b.path)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Writer builds a new bundle file. Typical use: Create, Add every
// document, Seal — which fsyncs the data file, persists the index and
// fsyncs the directory. A Writer is not safe for concurrent use.
type Writer struct {
	path string
	fs   fault.FS
	f    fault.File
	off  int64
	refs map[string]Ref
	buf  []byte
}

// Create starts a new bundle data file at path (which must not exist —
// bundles are never appended to by a Writer once sealed).
func Create(path string) (*Writer, error) {
	return CreateFS(fault.OS, path)
}

// CreateFS is Create over an injectable filesystem.
func CreateFS(fsys fault.FS, path string) (*Writer, error) {
	fsys = fault.Get(fsys)
	if _, ok := ParseID(path); !ok {
		return nil, fmt.Errorf("bundle: %q is not a bundle file name", path)
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	hdr := append([]byte(fileMagic), version)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		fsys.Remove(path)
		return nil, fmt.Errorf("bundle: %w", err)
	}
	return &Writer{path: path, fs: fsys, f: f, off: headerOff, refs: make(map[string]Ref)}, nil
}

// Add appends one document's archive (and optional sidecar) as a needle.
// Duplicate names within one bundle are rejected — the packer dedupes at
// the catalog level.
func (w *Writer) Add(name string, archive, sidecar []byte) error {
	if name == "" || len(name) > maxNameLen {
		return fmt.Errorf("bundle: invalid needle name %q", name)
	}
	if _, dup := w.refs[name]; dup {
		return fmt.Errorf("bundle: duplicate needle %q", name)
	}
	var payloadRel int64
	w.buf, payloadRel = appendNeedle(w.buf[:0], name, false, archive, sidecar)
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("bundle: appending %q: %w", name, err)
	}
	w.refs[name] = Ref{
		NeedleOff:  w.off,
		PayloadOff: w.off + payloadRel,
		ArchiveLen: int64(len(archive)),
		SidecarLen: int64(len(sidecar)),
		archiveCRC: crc32.ChecksumIEEE(archive),
		sidecarCRC: crc32.ChecksumIEEE(sidecar),
	}
	w.off += int64(len(w.buf))
	return nil
}

// Len returns how many documents have been added.
func (w *Writer) Len() int { return len(w.refs) }

// Path returns the data-file path being written.
func (w *Writer) Path() string { return w.path }

// Size returns the data file's current size — the roll-over signal for
// packers targeting a maximum bundle size.
func (w *Writer) Size() int64 { return w.off }

// Seal makes the bundle durable: fsync the data file, close it, persist
// the needle index, fsync the directory. After Seal the bundle is
// immutable except for tombstone appends through an opened Bundle.
func (w *Writer) Seal() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("bundle: sealing %s: %w", w.path, err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("bundle: sealing %s: %w", w.path, err)
	}
	if err := writeIndex(w.fs, IndexPath(w.path), w.refs, w.off, 0); err != nil {
		return fmt.Errorf("bundle: writing index of %s: %w", w.path, err)
	}
	return syncDir(w.fs, filepath.Dir(w.path))
}

// Abort discards an unsealed bundle (best-effort cleanup after a failed
// pack).
func (w *Writer) Abort() {
	w.f.Close()
	w.fs.Remove(w.path)
}

// syncDir fsyncs a directory so entries created or renamed into it are
// durable.
func syncDir(fsys fault.FS, dir string) error {
	f, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
