package algebra_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/dag"
	"repro/internal/dagtest"
	"repro/internal/label"
	"repro/internal/skeleton"
)

// sel returns the tag label ID, failing the test if missing.
func tagID(t *testing.T, in *dag.Instance, tag string) label.ID {
	t.Helper()
	id := in.Schema.Lookup(skeleton.TagLabel(tag))
	if id == label.Invalid {
		t.Fatalf("tag %q not in schema", tag)
	}
	return id
}

// treeCount applies the axis on a compressed instance and returns how many
// tree nodes the new selection covers.
func treeCount(t *testing.T, term, tag string, axis algebra.Axis) uint64 {
	t.Helper()
	in := dagtest.CompressedFromTerm(term)
	src := tagID(t, in, tag)
	out, dst := algebra.ApplyAxis(in, axis, src, "$r")
	if err := out.Validate(); err != nil {
		t.Fatalf("%v axis broke the instance: %v\n%s", axis, err, out)
	}
	return out.CountSelectedTree(dst)
}

func TestChildAxis(t *testing.T) {
	// children of the two 'b' nodes: c,c,d and c.
	if got := treeCount(t, "a(b(c,c,d),b(c),d)", "b", algebra.Child); got != 4 {
		t.Fatalf("child count = %d, want 4", got)
	}
}

func TestParentAxis(t *testing.T) {
	// parents of c nodes: the two b's.
	if got := treeCount(t, "a(b(c,c,d),b(c),d)", "c", algebra.Parent); got != 2 {
		t.Fatalf("parent count = %d, want 2", got)
	}
}

func TestDescendantAxis(t *testing.T) {
	// descendants of a: everything below the root = 6 nodes.
	if got := treeCount(t, "a(b(c,c,d),b(c),d)", "a", algebra.Descendant); got != 7 {
		t.Fatalf("descendant count = %d, want 7", got)
	}
	// descendants of b: c,c,d,c = 4.
	if got := treeCount(t, "a(b(c,c,d),b(c),d)", "b", algebra.Descendant); got != 4 {
		t.Fatalf("descendant-of-b count = %d, want 4", got)
	}
}

func TestDescendantOrSelfAxis(t *testing.T) {
	if got := treeCount(t, "a(b(c,c,d),b(c),d)", "b", algebra.DescendantOrSelf); got != 6 {
		t.Fatalf("dos count = %d, want 6", got)
	}
}

func TestAncestorAxis(t *testing.T) {
	// ancestors of c: the two b's and a.
	if got := treeCount(t, "a(b(c,c,d),b(c),d)", "c", algebra.Ancestor); got != 3 {
		t.Fatalf("ancestor count = %d, want 3", got)
	}
}

func TestAncestorOrSelfAxis(t *testing.T) {
	if got := treeCount(t, "a(b(c,c,d),b(c),d)", "c", algebra.AncestorOrSelf); got != 6 {
		t.Fatalf("aos count = %d, want 6", got)
	}
}

func TestSelfAxis(t *testing.T) {
	if got := treeCount(t, "a(b(c,c,d),b(c),d)", "c", algebra.Self); got != 3 {
		t.Fatalf("self count = %d, want 3", got)
	}
}

func TestFollowingSiblingAxis(t *testing.T) {
	// siblings after the first c in each b: under b1 (c,c,d): c,d;
	// under b2 (c): none. Also top level: after b1: b2,d; after b2: d —
	// but src is c, so only within the b's.
	if got := treeCount(t, "a(b(c,c,d),b(c),d)", "c", algebra.FollowingSibling); got != 2 {
		t.Fatalf("following-sibling count = %d, want 2", got)
	}
}

func TestFollowingSiblingSplitsRuns(t *testing.T) {
	// a(c,c,c): following-sibling(c) = the 2nd and 3rd c. The compressed
	// instance has one c vertex with multiplicity 3; the run must split.
	in := dagtest.CompressedFromTerm("a(c,c,c)")
	if in.NumVertices() != 2 {
		t.Fatalf("setup: vertices = %d", in.NumVertices())
	}
	src := tagID(t, in, "c")
	out, dst := algebra.ApplyAxis(in, algebra.FollowingSibling, src, "$r")
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := out.CountSelectedTree(dst); got != 2 {
		t.Fatalf("selected = %d, want 2\n%s", got, out)
	}
	if got := out.CountSelected(dst); got != 1 {
		t.Fatalf("selected DAG vertices = %d, want 1 (split run, shared tail)\n%s", got, out)
	}
}

func TestPrecedingSiblingAxis(t *testing.T) {
	in := dagtest.CompressedFromTerm("a(c,c,c)")
	src := tagID(t, in, "c")
	out, dst := algebra.ApplyAxis(in, algebra.PrecedingSibling, src, "$r")
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// preceding siblings of {c1,c2,c3}: c1,c2 selected.
	if got := out.CountSelectedTree(dst); got != 2 {
		t.Fatalf("selected = %d, want 2\n%s", got, out)
	}
}

func TestFollowingAxis(t *testing.T) {
	// following(b1): nodes strictly after b1 in document order, minus
	// ancestors: b2, its c, and d = 3... term a(b(c),b(c),d): following
	// of first b = {b2, c(under b2), d} = 3; following of second b = {d}.
	// src selects BOTH b's, so following(S) = union = {b2, c2, d} = 3.
	if got := treeCount(t, "a(b(c),b(c),d)", "b", algebra.Following); got != 3 {
		t.Fatalf("following count = %d, want 3", got)
	}
}

func TestPrecedingAxis(t *testing.T) {
	// preceding(d) with d last: everything before it except ancestors:
	// b,c,b,c = 4.
	if got := treeCount(t, "a(b(c),b(c),d)", "d", algebra.Preceding); got != 4 {
		t.Fatalf("preceding count = %d, want 4", got)
	}
}

func TestSetOps(t *testing.T) {
	in := dagtest.CompressedFromTerm("a(b,c,b)")
	b := tagID(t, in, "b")
	c := tagID(t, in, "c")
	in, u := algebra.Union(in, b, c, "$u")
	if got := in.CountSelectedTree(u); got != 3 {
		t.Fatalf("union = %d, want 3", got)
	}
	in, i := algebra.Intersect(in, b, c, "$i")
	if got := in.CountSelectedTree(i); got != 0 {
		t.Fatalf("intersect = %d, want 0", got)
	}
	in, d := algebra.Difference(in, u, b, "$d")
	if got := in.CountSelectedTree(d); got != 1 {
		t.Fatalf("difference = %d, want 1", got)
	}
	in, n := algebra.Complement(in, b, "$n")
	if got := in.CountSelectedTree(n); got != 2 {
		t.Fatalf("complement = %d, want 2 (a and c)", got)
	}
}

func TestRootFilter(t *testing.T) {
	in := dagtest.CompressedFromTerm("a(b)")
	a := tagID(t, in, "a")
	b := tagID(t, in, "b")
	in, yes := algebra.RootFilter(in, a, "$y")
	if got := in.CountSelectedTree(yes); got != 2 {
		t.Fatalf("root filter (root selected) = %d, want all 2", got)
	}
	in, no := algebra.RootFilter(in, b, "$n")
	if got := in.CountSelectedTree(no); got != 0 {
		t.Fatalf("root filter (root unselected) = %d, want 0", got)
	}
}

func TestAddAllAddRoot(t *testing.T) {
	in := dagtest.CompressedFromTerm("a(b,b)")
	in, all := algebra.AddAll(in, "$all")
	if got := in.CountSelectedTree(all); got != 3 {
		t.Fatalf("all = %d", got)
	}
	in, root := algebra.AddRoot(in, "$root")
	if got := in.CountSelectedTree(root); got != 1 {
		t.Fatalf("root = %d", got)
	}
	if !in.Verts[in.Root].Labels.Has(root) {
		t.Fatal("root selection not on root vertex")
	}
}

func TestClearLabel(t *testing.T) {
	in := dagtest.CompressedFromTerm("a(b)")
	b := tagID(t, in, "b")
	algebra.ClearLabel(in, b)
	if got := in.CountSelected(b); got != 0 {
		t.Fatalf("cleared label still selects %d", got)
	}
}

// TestUpwardNoDecompression is Corollary 3.7's precondition: upward axes
// and set operations never change the DAG.
func TestUpwardNoDecompression(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := dag.Compress(dagtest.RandomTree(r, 60, 4, 3))
		v0, e0 := in.NumVertices(), in.NumEdges()
		var src label.ID
		if in.Schema.Len() == 0 {
			return true
		}
		src = label.ID(r.Intn(in.Schema.Len()))
		for _, ax := range []algebra.Axis{algebra.Self, algebra.Parent, algebra.Ancestor, algebra.AncestorOrSelf} {
			var out *dag.Instance
			out, src = algebra.ApplyAxis(in, ax, src, "$x"+ax.String())
			in = out
			if in.NumVertices() != v0 || in.NumEdges() != e0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDoublingBound checks Propositions 3.2/3.4: one axis application at
// most doubles vertices and edges.
func TestDoublingBound(t *testing.T) {
	axes := []algebra.Axis{
		algebra.Child, algebra.Descendant, algebra.DescendantOrSelf,
		algebra.FollowingSibling, algebra.PrecedingSibling,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := dag.Compress(dagtest.RandomTree(r, 80, 4, 3))
		if base.Schema.Len() == 0 {
			return true
		}
		src := label.ID(r.Intn(base.Schema.Len()))
		for _, ax := range axes {
			in := base.Clone()
			v0, e0 := in.NumVertices(), in.NumEdges()
			out, _ := algebra.ApplyAxis(in, ax, src, "$r")
			if err := out.Validate(); err != nil {
				t.Logf("%v: %v", ax, err)
				return false
			}
			if out.NumVertices() > 2*v0 || out.NumEdges() > 2*e0 {
				t.Logf("%v grew %d/%d -> %d/%d", ax, v0, e0, out.NumVertices(), out.NumEdges())
				return false
			}
			// Equivalence must be preserved on the original schema.
			keep := make([]label.ID, base.Schema.Len())
			for i := range keep {
				keep[i] = label.ID(i)
			}
			if !dag.Equivalent(out.Reduct(keep), base) {
				t.Logf("%v changed the underlying document", ax)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAxisInverseRoundTrip(t *testing.T) {
	for a := algebra.Self; a <= algebra.Preceding; a++ {
		if a.Inverse().Inverse() != a {
			t.Errorf("%v: double inverse mismatch", a)
		}
	}
}

func TestEmptyInstance(t *testing.T) {
	in := dag.New()
	for _, ax := range []algebra.Axis{algebra.Child, algebra.Parent, algebra.Descendant, algebra.FollowingSibling, algebra.Following} {
		out, _ := algebra.ApplyAxis(in, ax, 0, "$r")
		if out.NumVertices() != 0 {
			t.Fatalf("%v on empty instance produced vertices", ax)
		}
		in = out
	}
}
