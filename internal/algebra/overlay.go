package algebra

import (
	"repro/internal/dag"
	"repro/internal/label"
)

// This file implements every Core XPath operator of algebra.go a second
// time, for the zero-clone evaluation mode: operators read the immutable
// frozen base shared by all in-flight queries (plus the query's private
// overlay) and write dense Bitset columns in the overlay instead of
// interning temporaries into the schema and mutating per-vertex label
// sets. Set operations become word-wise loops; upward axes stay a single
// bottom-up pass; the decompressing axes (downward, sibling) become
// copy-on-write rewrites that append to the overlay only the vertices
// whose edges or selection variants must diverge from the base — the
// identity part of the graph keeps its IDs, so selections written before
// a rewrite stay valid for free and a small-selection query allocates
// proportionally to what it splits, not to the document.
//
// Operator semantics are identical to the clone path; the golden tests in
// internal/engine assert equality corpus by corpus and per random query.

// OvLabel fills column dst with the membership of the relation named
// name, or with the empty set if the document does not define it.
func OvLabel(ov *dag.Overlay, name string, dst int) {
	d := ov.Col(dst)
	d.Zero()
	id := ov.Frozen().Instance().Schema.Lookup(name)
	if id == label.Invalid {
		return
	}
	if !ov.Rewritten() {
		d.CopyFrom(ov.Frozen().LabelCol(id))
		return
	}
	for _, v := range ov.Order() {
		if ov.Labels(v).Has(id) {
			d.Set(v)
		}
	}
}

// OvAll sets dst := V (every live vertex).
func OvAll(ov *dag.Overlay, dst int) {
	ov.FillLive(ov.Col(dst))
}

// OvRoot sets dst := {root}.
func OvRoot(ov *dag.Overlay, dst int) {
	d := ov.Col(dst)
	d.Zero()
	if r := ov.Root(); r != dag.NilVertex {
		d.Set(r)
	}
}

// OvUnion sets dst := a ∪ b.
func OvUnion(ov *dag.Overlay, a, b, dst int) {
	ca, cb, d := ov.Col(a), ov.Col(b), ov.Col(dst)
	for i := range d {
		d[i] = ca[i] | cb[i]
	}
}

// OvIntersect sets dst := a ∩ b.
func OvIntersect(ov *dag.Overlay, a, b, dst int) {
	ca, cb, d := ov.Col(a), ov.Col(b), ov.Col(dst)
	for i := range d {
		d[i] = ca[i] & cb[i]
	}
}

// OvDifference sets dst := a − b.
func OvDifference(ov *dag.Overlay, a, b, dst int) {
	ca, cb, d := ov.Col(a), ov.Col(b), ov.Col(dst)
	for i := range d {
		d[i] = ca[i] &^ cb[i]
	}
}

// OvComplement sets dst := V − a.
func OvComplement(ov *dag.Overlay, a, dst int) {
	d := ov.Col(dst)
	ov.FillLive(d)
	ca := ov.Col(a)
	for i := range d {
		d[i] &^= ca[i]
	}
}

// OvRootFilter sets dst := V if root ∈ a, else ∅.
func OvRootFilter(ov *dag.Overlay, a, dst int) {
	d := ov.Col(dst)
	d.Zero()
	r := ov.Root()
	if r == dag.NilVertex || !ov.Col(a).Get(r) {
		return
	}
	ov.FillLive(d)
}

// OvApplyAxis computes dst := axis(src). scratchA and scratchB are two
// spare column indices the composed axes (following, preceding) may
// clobber.
func OvApplyAxis(ov *dag.Overlay, axis Axis, src, dst, scratchA, scratchB int) {
	switch axis {
	case Self:
		ov.Col(dst).CopyFrom(ov.Col(src))
	case Parent, Ancestor, AncestorOrSelf:
		ovUpward(ov, axis, src, dst)
	case Child, Descendant, DescendantOrSelf:
		ovDownward(ov, axis, src, dst)
	case FollowingSibling, PrecedingSibling:
		ovSibling(ov, axis, src, dst)
	case Following:
		OvApplyAxis(ov, AncestorOrSelf, src, scratchA, -1, -1)
		OvApplyAxis(ov, FollowingSibling, scratchA, scratchB, -1, -1)
		OvApplyAxis(ov, DescendantOrSelf, scratchB, dst, -1, -1)
	case Preceding:
		OvApplyAxis(ov, AncestorOrSelf, src, scratchA, -1, -1)
		OvApplyAxis(ov, PrecedingSibling, scratchA, scratchB, -1, -1)
		OvApplyAxis(ov, DescendantOrSelf, scratchB, dst, -1, -1)
	default:
		panic("algebra: unknown overlay axis " + axis.String())
	}
}

// ovUpward computes parent / ancestor / ancestor-or-self bottom-up in one
// pass over the live topological order, exactly like the clone path's
// upwardAxis but reading and writing columns. The graph never changes
// (Proposition 3.3).
func ovUpward(ov *dag.Overlay, axis Axis, src, dst int) {
	s, d := ov.Col(src), ov.Col(dst)
	d.Zero()
	order := ov.Order()
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		sel := false
		switch axis {
		case Parent:
			for _, e := range ov.Edges(v) {
				if s.Get(e.Child) {
					sel = true
					break
				}
			}
		case Ancestor:
			for _, e := range ov.Edges(v) {
				if s.Get(e.Child) || d.Get(e.Child) {
					sel = true
					break
				}
			}
		case AncestorOrSelf:
			if s.Get(v) {
				sel = true
			} else {
				for _, e := range ov.Edges(v) {
					if d.Get(e.Child) {
						sel = true
						break
					}
				}
			}
		}
		if sel {
			d.Set(v)
		}
	}
}

// ovDownward is the copy-on-write form of downwardAxis (Figure 4). Pass 1
// walks the live graph top-down computing which selection variants —
// selected (T), unselected (F), or both — each vertex is requested under.
// Pass 2 walks bottom-up choosing a representative per (vertex, variant):
// the vertex itself when the variant is its "identity" variant and no
// child representative diverges, else a fresh extension copy. Only
// vertices on or above a genuine split are copied, which realises the
// at-most-doubling bound of Proposition 3.2 while typically touching far
// less than the document.
func ovDownward(ov *dag.Overlay, axis Axis, src, dst int) {
	d := ov.Col(dst)
	d.Zero()
	root := ov.Root()
	if root == dag.NilVertex {
		return
	}
	s := ov.Col(src)
	order := ov.Order()
	needF, needT := ov.NeedScratch()
	rootSel := axis == DescendantOrSelf && s.Get(root)
	if rootSel {
		needT.Set(root)
	} else {
		needF.Set(root)
	}

	// Pass 1: propagate need variants down every live edge. For parent
	// variant sv, the child's variant is (line 4 of Figure 4)
	//   sw = v∈S  ∨  (sv ∧ axis∈{descendant, descendant-or-self})
	//             ∨  (axis = descendant-or-self ∧ child∈S).
	if axis == Child {
		// For child the variant is v∈S alone — independent of the
		// parent's own variant, so one plain scan suffices.
		for _, v := range order {
			if s.Get(v) {
				for _, e := range ov.Edges(v) {
					needT.Set(e.Child)
				}
			} else {
				for _, e := range ov.Edges(v) {
					needF.Set(e.Child)
				}
			}
		}
	} else {
		dos := axis == DescendantOrSelf
		for _, v := range order {
			nf, nt := needF.Get(v), needT.Get(v)
			if !nf && !nt {
				continue
			}
			vi := s.Get(v)
			for _, e := range ov.Edges(v) {
				swBase := vi || (dos && s.Get(e.Child))
				if nt || swBase {
					needT.Set(e.Child)
				}
				if nf && !swBase {
					needF.Set(e.Child)
				}
			}
		}
	}

	// No vertex requested under both variants means no vertex ever
	// splits, so no representative can diverge anywhere: the graph is
	// unchanged and the selection is exactly the T-variant set. This is
	// the common case for selective steps and skips pass 2 entirely.
	if !anyOverlap(needF, needT) {
		copy(d, needT)
		return
	}

	// Pass 2: representatives, children before parents. The common case —
	// no child representative diverges — is detected without building an
	// edge plan, so untouched regions cost two bitset probes per edge and
	// write nothing.
	repF, repT := ov.RepScratch()
	rw := ov.BeginRewrite()
	liveEdges := 0
	dos := axis == DescendantOrSelf
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		nf, nt := needF.Get(v), needT.Get(v)
		if !nf && !nt {
			continue
		}
		vi := s.Get(v)
		idVariantT := nt && !nf // the variant that may keep v's identity
		edges := ov.Edges(v)
		for variant := 0; variant < 2; variant++ {
			sv := variant == 1
			if (sv && !nt) || (!sv && !nf) {
				continue
			}
			diverged := false
			for _, e := range edges {
				sw := vi || (sv && axis != Child) || (dos && s.Get(e.Child))
				rep := repF[e.Child]
				if sw {
					rep = repT[e.Child]
				}
				if rep != e.Child {
					diverged = true
					break
				}
			}
			var id dag.VertexID
			switch {
			case !diverged && sv == idVariantT:
				id = v
			case !diverged:
				// Edges unchanged but the identity slot is taken by the
				// other variant: copy sharing the (read-only) edge slice.
				id = rw.Append(v, edges)
			default:
				plan := ov.PlanScratch()
				for _, e := range edges {
					sw := vi || (sv && axis != Child) || (dos && s.Get(e.Child))
					rep := repF[e.Child]
					if sw {
						rep = repT[e.Child]
					}
					plan = append(plan, dag.Edge{Child: rep, Count: e.Count})
				}
				id = rw.Append(v, append([]dag.Edge(nil), plan...))
				ov.KeepPlanScratch(plan)
			}
			liveEdges += len(edges)
			if sv {
				repT[v] = id
			} else {
				repF[v] = id
			}
		}
	}

	newRoot := repF[root]
	if rootSel {
		newRoot = repT[root]
	}
	rw.Finish(newRoot, liveEdges)

	// The selection: every vertex requested under the T variant, at its
	// T representative. (needF/needT and repT survive Finish; the old
	// topological order does not.)
	d = ov.Col(dst) // re-fetch: Finish may have grown the column
	dag.ForEachBit(needT, func(v dag.VertexID) {
		d.Set(repT[v])
	})
}

// ovSibling is the copy-on-write form of siblingAxis (Proposition 3.4).
// The per-vertex edge rewrite — splitting multiplicity runs at the first
// selected sibling in scan order — is independent of the vertex's own
// variant, so pass 2 computes one edge plan per vertex and at most two
// representatives sharing it.
func ovSibling(ov *dag.Overlay, axis Axis, src, dst int) {
	d := ov.Col(dst)
	d.Zero()
	root := ov.Root()
	if root == dag.NilVertex {
		return
	}
	s := ov.Col(src)
	order := ov.Order()
	reversed := axis == PrecedingSibling
	needF, needT := ov.NeedScratch()
	needF.Set(root)

	// Pass 1: need variants. Within a parent's child sequence (reversed
	// for preceding-sibling), everything after the first selected sibling
	// is selected; the first occurrence of a selected run is not, the
	// remaining count-1 are.
	for _, v := range order {
		if !needF.Get(v) && !needT.Get(v) {
			continue
		}
		edges := ov.Edges(v)
		seen := false
		for j := range edges {
			e := edges[j]
			if reversed {
				e = edges[len(edges)-1-j]
			}
			switch {
			case seen:
				needT.Set(e.Child)
			case s.Get(e.Child):
				needF.Set(e.Child)
				if e.Count > 1 {
					needT.Set(e.Child)
				}
				seen = true
			default:
				needF.Set(e.Child)
			}
		}
	}

	// As in ovDownward: no (vertex, both-variants) request means no run
	// ever splits and no edge list changes — the selection is needT.
	if !anyOverlap(needF, needT) {
		copy(d, needT)
		return
	}

	// Pass 2: representatives, children before parents. The edge rewrite
	// is variant-independent, so each vertex gets one plan and at most two
	// representatives sharing its edge slice. The common case — no child
	// in S, no child representative diverged — is detected without
	// building a plan.
	repF, repT := ov.RepScratch()
	rw := ov.BeginRewrite()
	liveEdges := 0
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		nf, nt := needF.Get(v), needT.Get(v)
		if !nf && !nt {
			continue
		}
		edges := ov.Edges(v)

		untouched := true
		for _, e := range edges {
			if s.Get(e.Child) || repF[e.Child] != e.Child {
				untouched = false
				break
			}
		}
		identical := untouched
		var planCopy []dag.Edge // non-nil when the edge list changed
		if !untouched {
			plan := ov.PlanScratch()
			emit := func(c dag.VertexID, count uint32, sel bool) {
				if count == 0 {
					return
				}
				nc := repF[c]
				if sel {
					nc = repT[c]
				}
				if n := len(plan); n > 0 && plan[n-1].Child == nc {
					plan[n-1].Count += count
				} else {
					plan = append(plan, dag.Edge{Child: nc, Count: count})
				}
			}
			seen := false
			for j := range edges {
				e := edges[j]
				if reversed {
					e = edges[len(edges)-1-j]
				}
				switch {
				case seen:
					emit(e.Child, e.Count, true)
				case s.Get(e.Child):
					emit(e.Child, 1, false)
					emit(e.Child, e.Count-1, true)
					seen = true
				default:
					emit(e.Child, e.Count, false)
				}
			}
			if reversed {
				for l, r := 0, len(plan)-1; l < r; l, r = l+1, r-1 {
					plan[l], plan[r] = plan[r], plan[l]
				}
				plan = mergeRuns(plan)
			}
			identical = planEqual(plan, edges)
			if !identical {
				planCopy = append([]dag.Edge(nil), plan...)
			}
			ov.KeepPlanScratch(plan)
		}

		idVariantT := nt && !nf
		rep := func(isIdentitySlot bool) dag.VertexID {
			switch {
			case identical && isIdentitySlot:
				return v
			case identical:
				return rw.Append(v, edges) // share the read-only base slice
			default:
				return rw.Append(v, planCopy)
			}
		}
		nEdges := len(edges)
		if !identical {
			nEdges = len(planCopy)
		}
		if nf {
			repF[v] = rep(!idVariantT)
			liveEdges += nEdges
		}
		if nt {
			repT[v] = rep(idVariantT)
			liveEdges += nEdges
		}
	}

	rw.Finish(repF[root], liveEdges)

	d = ov.Col(dst) // re-fetch: Finish may have grown the column
	dag.ForEachBit(needT, func(v dag.VertexID) {
		d.Set(repT[v])
	})
}

// planEqual reports whether a rewritten edge plan is identical to the
// original edge list.
func planEqual(plan, edges []dag.Edge) bool {
	if len(plan) != len(edges) {
		return false
	}
	for i := range plan {
		if plan[i] != edges[i] {
			return false
		}
	}
	return true
}

// anyOverlap reports whether two equally-sized bitsets intersect.
func anyOverlap(a, b dag.Bitset) bool {
	for i := range a {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}
