// Package algebra implements the Core XPath query operators on compressed
// instances (Section 3 of the paper): axis applications, set operations,
// and the root-conditional operator. Each operator adds one new selection
// (unary relation) to an instance.
//
// Operator costs follow the paper exactly:
//
//   - Set operations, the upward axes (self, parent, ancestor,
//     ancestor-or-self) and V|root never change the DAG (Proposition 3.3).
//     They run in linear time and mutate the instance in place.
//   - The downward axes (child, descendant, descendant-or-self) and the
//     sibling axes may need to split shared vertices whose copies require
//     different selections — partial decompression. Each such application
//     at most doubles the number of vertices and edges (Propositions 3.2
//     and 3.4), which is where the 2^|Q| of Theorem 3.6 comes from.
//   - following and preceding are compositions of the above (Section 3.2).
//
// All operators take ownership of their input instance: the caller must use
// the returned instance and must not retain the argument.
package algebra

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/label"
)

// Axis enumerates the XPath axes of the Core XPath fragment.
type Axis int

const (
	Self Axis = iota
	Child
	Parent
	Descendant
	DescendantOrSelf
	Ancestor
	AncestorOrSelf
	FollowingSibling
	PrecedingSibling
	Following
	Preceding
)

var axisNames = [...]string{
	Self:             "self",
	Child:            "child",
	Parent:           "parent",
	Descendant:       "descendant",
	DescendantOrSelf: "descendant-or-self",
	Ancestor:         "ancestor",
	AncestorOrSelf:   "ancestor-or-self",
	FollowingSibling: "following-sibling",
	PrecedingSibling: "preceding-sibling",
	Following:        "following",
	Preceding:        "preceding",
}

func (a Axis) String() string {
	if int(a) < len(axisNames) {
		return axisNames[a]
	}
	return fmt.Sprintf("axis(%d)", int(a))
}

// Inverse returns the reverse axis, used when compiling path conditions
// towards the root of the query tree (Section 3.1).
func (a Axis) Inverse() Axis {
	switch a {
	case Self:
		return Self
	case Child:
		return Parent
	case Parent:
		return Child
	case Descendant:
		return Ancestor
	case Ancestor:
		return Descendant
	case DescendantOrSelf:
		return AncestorOrSelf
	case AncestorOrSelf:
		return DescendantOrSelf
	case FollowingSibling:
		return PrecedingSibling
	case PrecedingSibling:
		return FollowingSibling
	case Following:
		return Preceding
	case Preceding:
		return Following
	}
	panic("algebra: unknown axis " + a.String())
}

// Upward reports whether applying the axis never decompresses the instance
// (Proposition 3.3; Corollary 3.7 relies on this).
func (a Axis) Upward() bool {
	switch a {
	case Self, Parent, Ancestor, AncestorOrSelf:
		return true
	}
	return false
}

// ApplyAxis computes dst := axis(src) on in, returning the (possibly
// partially decompressed) result instance and the ID of the new selection
// named dstName. in is consumed.
func ApplyAxis(in *dag.Instance, axis Axis, src label.ID, dstName string) (*dag.Instance, label.ID) {
	switch axis {
	case Self:
		return selfAxis(in, src, dstName)
	case Child, Descendant, DescendantOrSelf:
		return downwardAxis(in, axis, src, dstName)
	case Parent, Ancestor, AncestorOrSelf:
		return upwardAxis(in, axis, src, dstName)
	case FollowingSibling, PrecedingSibling:
		return siblingAxis(in, axis, src, dstName)
	case Following:
		// following(S) = descendant-or-self(following-sibling(ancestor-or-self(S)))
		return composedAxis(in, src, dstName, AncestorOrSelf, FollowingSibling, DescendantOrSelf)
	case Preceding:
		return composedAxis(in, src, dstName, AncestorOrSelf, PrecedingSibling, DescendantOrSelf)
	}
	panic("algebra: unknown axis " + axis.String())
}

func composedAxis(in *dag.Instance, src label.ID, dstName string, axes ...Axis) (*dag.Instance, label.ID) {
	cur := src
	var temps []label.ID
	for i, a := range axes {
		name := dstName
		if i < len(axes)-1 {
			name = fmt.Sprintf("%s~%d", dstName, i)
		}
		in, cur = ApplyAxis(in, a, cur, name)
		if i < len(axes)-1 {
			temps = append(temps, cur)
		}
	}
	for _, t := range temps {
		ClearLabel(in, t)
	}
	return in, cur
}

// selfAxis copies the selection: self(S) = S.
func selfAxis(in *dag.Instance, src label.ID, dstName string) (*dag.Instance, label.ID) {
	dst := in.Schema.Intern(dstName)
	for i := range in.Verts {
		if in.Verts[i].Labels.Has(src) {
			in.Verts[i].Labels = in.Verts[i].Labels.Set(dst)
		}
	}
	return in, dst
}

// upwardAxis computes parent / ancestor / ancestor-or-self selections
// bottom-up in one pass, never altering the DAG (Proposition 3.3): a
// vertex's membership is determined entirely by its subtree, which is
// identical for all tree nodes it represents.
func upwardAxis(in *dag.Instance, axis Axis, src label.ID, dstName string) (*dag.Instance, label.ID) {
	dst := in.Schema.Intern(dstName)
	if len(in.Verts) == 0 {
		return in, dst
	}
	order := in.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		vert := &in.Verts[v]
		sel := false
		switch axis {
		case Parent:
			// n in parent(S) iff some child of n is in S.
			for _, e := range vert.Edges {
				if in.Verts[e.Child].Labels.Has(src) {
					sel = true
					break
				}
			}
		case Ancestor:
			// n in ancestor(S) iff some proper descendant is in S.
			for _, e := range vert.Edges {
				cl := in.Verts[e.Child].Labels
				if cl.Has(src) || cl.Has(dst) {
					sel = true
					break
				}
			}
		case AncestorOrSelf:
			if vert.Labels.Has(src) {
				sel = true
			} else {
				for _, e := range vert.Edges {
					if in.Verts[e.Child].Labels.Has(dst) {
						sel = true
						break
					}
				}
			}
		}
		if sel {
			vert.Labels = vert.Labels.Set(dst)
		}
	}
	return in, dst
}

// newMemo returns a dense (vertex, requested selection) → output vertex
// memo table for copy-on-split rewrites: two slots per input vertex,
// NilVertex-initialised. Dense slices replace the previous
// map[memoKey]VertexID — rewrites probe the memo once per edge, and a
// slice index beats a map lookup by an order of magnitude on that path.
func newMemo(n int) []dag.VertexID {
	memo := make([]dag.VertexID, 2*n)
	for i := range memo {
		memo[i] = dag.NilVertex
	}
	return memo
}

// memoIdx addresses the (v, sel) slot in a dense memo.
func memoIdx(v dag.VertexID, sel bool) int {
	i := 2 * int(v)
	if sel {
		i++
	}
	return i
}

// downwardAxis implements the recursive procedure of Figure 4, generalised
// to run-length-encoded edges (which are orthogonal to downward selection:
// every repetition of a child under the same parent receives the same
// selection). Instead of mutating and copying nodes in place it rewrites
// the DAG top-down with a (vertex, selection) memo table — each input
// vertex yields at most two output vertices, giving the at-most-doubling
// bound of Proposition 3.2.
func downwardAxis(in *dag.Instance, axis Axis, src label.ID, dstName string) (*dag.Instance, label.ID) {
	dst := in.Schema.Intern(dstName)
	if len(in.Verts) == 0 {
		return in, dst
	}
	out := &dag.Instance{Schema: in.Schema}
	memo := newMemo(len(in.Verts))

	var process func(v dag.VertexID, sv bool) dag.VertexID
	process = func(v dag.VertexID, sv bool) dag.VertexID {
		key := memoIdx(v, sv)
		if id := memo[key]; id != dag.NilVertex {
			return id
		}
		id := dag.VertexID(len(out.Verts))
		out.Verts = append(out.Verts, dag.Vertex{})
		memo[key] = id

		vert := &in.Verts[v]
		labels := vert.Labels.Clone()
		if sv {
			labels = labels.Set(dst)
		}
		vi := vert.Labels.Has(src)
		edges := make([]dag.Edge, 0, len(vert.Edges))
		for _, e := range vert.Edges {
			// Line 4 of Figure 4: the child's new selection.
			sw := vi
			if sv && (axis == Descendant || axis == DescendantOrSelf) {
				sw = true
			}
			if axis == DescendantOrSelf && in.Verts[e.Child].Labels.Has(src) {
				sw = true
			}
			edges = append(edges, dag.Edge{Child: process(e.Child, sw), Count: e.Count})
		}
		out.Verts[id].Edges = edges
		out.Verts[id].Labels = labels
		return id
	}

	rootSel := axis == DescendantOrSelf && in.Verts[in.Root].Labels.Has(src)
	out.Root = process(in.Root, rootSel)
	return out, dst
}

// siblingAxis implements following-sibling and preceding-sibling with edge
// multiplicities (Proposition 3.4). A vertex is selected iff, within its
// parent's child sequence, some strictly earlier (resp. later) sibling is
// in S. Multiplicity runs can split: in a run c^k with c in S, the first
// (resp. last) occurrence has no earlier (later) selected sibling from the
// run itself, while the remaining k-1 do. Descendant structure is
// untouched, so like the downward axes this at most doubles the instance.
func siblingAxis(in *dag.Instance, axis Axis, src label.ID, dstName string) (*dag.Instance, label.ID) {
	dst := in.Schema.Intern(dstName)
	if len(in.Verts) == 0 {
		return in, dst
	}
	out := &dag.Instance{Schema: in.Schema}
	memo := newMemo(len(in.Verts))

	var process func(v dag.VertexID, sv bool) dag.VertexID
	process = func(v dag.VertexID, sv bool) dag.VertexID {
		key := memoIdx(v, sv)
		if id := memo[key]; id != dag.NilVertex {
			return id
		}
		id := dag.VertexID(len(out.Verts))
		out.Verts = append(out.Verts, dag.Vertex{})
		memo[key] = id

		vert := &in.Verts[v]
		labels := vert.Labels.Clone()
		if sv {
			labels = labels.Set(dst)
		}

		srcEdges := vert.Edges
		reversed := axis == PrecedingSibling
		edges := make([]dag.Edge, 0, len(srcEdges))
		emit := func(c dag.VertexID, count uint32, sel bool) {
			if count == 0 {
				return
			}
			nc := process(c, sel)
			if n := len(edges); n > 0 && edges[n-1].Child == nc {
				edges[n-1].Count += count
			} else {
				edges = append(edges, dag.Edge{Child: nc, Count: count})
			}
		}
		seen := false // a selected sibling has been passed in scan order
		for i := 0; i < len(srcEdges); i++ {
			e := srcEdges[i]
			if reversed {
				e = srcEdges[len(srcEdges)-1-i]
			}
			inS := in.Verts[e.Child].Labels.Has(src)
			switch {
			case seen:
				emit(e.Child, e.Count, true)
			case inS:
				// First occurrence in scan order is not preceded
				// (followed) by a selected sibling; the rest are.
				emit(e.Child, 1, false)
				emit(e.Child, e.Count-1, true)
				seen = true
			default:
				emit(e.Child, e.Count, false)
			}
		}
		if reversed {
			// Edges were emitted in reverse scan order; restore
			// document order.
			for l, r := 0, len(edges)-1; l < r; l, r = l+1, r-1 {
				edges[l], edges[r] = edges[r], edges[l]
			}
			// Reversal can expose mergeable neighbours at the seam.
			edges = mergeRuns(edges)
		}
		out.Verts[id].Edges = edges
		out.Verts[id].Labels = labels
		return id
	}

	out.Root = process(in.Root, false)
	return out, dst
}

func mergeRuns(edges []dag.Edge) []dag.Edge {
	if len(edges) < 2 {
		return edges
	}
	w := 0
	for r := 1; r < len(edges); r++ {
		if edges[r].Child == edges[w].Child {
			edges[w].Count += edges[r].Count
		} else {
			w++
			edges[w] = edges[r]
		}
	}
	return edges[:w+1]
}

// Union computes dst := a ∪ b in place.
func Union(in *dag.Instance, a, b label.ID, dstName string) (*dag.Instance, label.ID) {
	dst := in.Schema.Intern(dstName)
	for i := range in.Verts {
		l := in.Verts[i].Labels
		if l.Has(a) || l.Has(b) {
			in.Verts[i].Labels = l.Set(dst)
		}
	}
	return in, dst
}

// Intersect computes dst := a ∩ b in place.
func Intersect(in *dag.Instance, a, b label.ID, dstName string) (*dag.Instance, label.ID) {
	dst := in.Schema.Intern(dstName)
	for i := range in.Verts {
		l := in.Verts[i].Labels
		if l.Has(a) && l.Has(b) {
			in.Verts[i].Labels = l.Set(dst)
		}
	}
	return in, dst
}

// Difference computes dst := a − b in place.
func Difference(in *dag.Instance, a, b label.ID, dstName string) (*dag.Instance, label.ID) {
	dst := in.Schema.Intern(dstName)
	for i := range in.Verts {
		l := in.Verts[i].Labels
		if l.Has(a) && !l.Has(b) {
			in.Verts[i].Labels = l.Set(dst)
		}
	}
	return in, dst
}

// Complement computes dst := V − a in place (needed for "not(...)").
func Complement(in *dag.Instance, a label.ID, dstName string) (*dag.Instance, label.ID) {
	dst := in.Schema.Intern(dstName)
	for i := range in.Verts {
		if !in.Verts[i].Labels.Has(a) {
			in.Verts[i].Labels = in.Verts[i].Labels.Set(dst)
		}
	}
	return in, dst
}

// RootFilter computes dst := V|root(a) = V if root ∈ a, else ∅ — the
// operator supporting absolute paths inside conditions (Section 3.1).
func RootFilter(in *dag.Instance, a label.ID, dstName string) (*dag.Instance, label.ID) {
	dst := in.Schema.Intern(dstName)
	if len(in.Verts) == 0 || !in.Verts[in.Root].Labels.Has(a) {
		return in, dst
	}
	for i := range in.Verts {
		in.Verts[i].Labels = in.Verts[i].Labels.Set(dst)
	}
	return in, dst
}

// AddAll adds a selection containing every vertex (the node set V at query
// tree leaves).
func AddAll(in *dag.Instance, dstName string) (*dag.Instance, label.ID) {
	dst := in.Schema.Intern(dstName)
	for i := range in.Verts {
		in.Verts[i].Labels = in.Verts[i].Labels.Set(dst)
	}
	return in, dst
}

// AddRoot adds a selection containing only the root (the node set {root}).
func AddRoot(in *dag.Instance, dstName string) (*dag.Instance, label.ID) {
	dst := in.Schema.Intern(dstName)
	if len(in.Verts) > 0 {
		r := &in.Verts[in.Root]
		r.Labels = r.Labels.Set(dst)
	}
	return in, dst
}

// ClearLabel removes every vertex's membership in id — used to drop
// intermediate results that are no longer needed (Section 3.3).
func ClearLabel(in *dag.Instance, id label.ID) {
	for i := range in.Verts {
		if in.Verts[i].Labels.Has(id) {
			in.Verts[i].Labels = in.Verts[i].Labels.Without(id)
		}
	}
}
