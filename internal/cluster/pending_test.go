package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
)

// TestPendingLogReplay pins the WAL contract: transfers added before a
// restart are owed after it, done transfers are not, and re-adding the
// same (doc, peer) does not duplicate.
func TestPendingLogReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := openPendingLog(fault.OS, dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	a := transfer{Doc: "alpha", Peer: "http://n2"}
	b := transfer{Doc: "beta", Peer: "http://n3", Tomb: true}
	c := transfer{Doc: "gamma", Peer: "http://n2"}
	for _, tr := range []transfer{a, b, c, a} { // a re-added: supersedes
		if err := l.Add(tr); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	if err := l.Done(c); err != nil {
		t.Fatalf("done: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// "Restart": replay from disk.
	l2, err := openPendingLog(fault.OS, dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	got := l2.Pending()
	want := []transfer{a, b}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed pending = %+v, want %+v", got, want)
	}
	if l2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l2.Len())
	}
}

// TestPendingLogTornTail pins crash tolerance: a half-written final
// record is discarded on replay and truncated away, and appends after
// the truncate replay cleanly.
func TestPendingLogTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := openPendingLog(fault.OS, dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Add(transfer{Doc: "alpha", Peer: "http://n2"}); err != nil {
		t.Fatalf("add: %v", err)
	}
	if err := l.Add(transfer{Doc: "beta", Peer: "http://n2"}); err != nil {
		t.Fatalf("add: %v", err)
	}
	l.Close()

	// Tear the tail mid-record (drop the CRC suffix and newline).
	path := filepath.Join(dir, "pending.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	last := lines[len(lines)-1]
	torn := data[:len(data)-len(last)-1+len(last)/2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatalf("tear: %v", err)
	}

	l2, err := openPendingLog(fault.OS, dir)
	if err != nil {
		t.Fatalf("reopen torn: %v", err)
	}
	got := l2.Pending()
	if len(got) != 1 || got[0].Doc != "alpha" {
		t.Fatalf("torn replay pending = %+v, want just alpha", got)
	}
	// The tear must be gone from disk: append and replay once more.
	if err := l2.Add(transfer{Doc: "gamma", Peer: "http://n3"}); err != nil {
		t.Fatalf("add after tear: %v", err)
	}
	l2.Close()
	l3, err := openPendingLog(fault.OS, dir)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer l3.Close()
	if got := l3.Pending(); len(got) != 2 {
		t.Fatalf("post-tear replay pending = %+v, want alpha+gamma", got)
	}
}

// TestPendingLogClosedAppend pins the shutdown race: a Published hook
// firing after the log closed must get an error, not a nil-pointer
// panic, and the in-memory pending set must still track the transfer
// so an in-process drain can attempt it.
func TestPendingLogClosedAppend(t *testing.T) {
	l, err := openPendingLog(fault.OS, t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	tr := transfer{Doc: "late", Peer: "http://n2"}
	if err := l.Add(tr); err == nil {
		t.Fatal("Add on a closed log returned nil error")
	}
	if got := l.Pending(); len(got) != 1 || got[0] != tr {
		t.Fatalf("pending after closed Add = %+v, want [%+v]", got, tr)
	}
	if err := l.Done(tr); err == nil {
		t.Fatal("Done on a closed log returned nil error")
	}
	if l.Len() != 0 {
		t.Fatalf("Len after Done = %d, want 0", l.Len())
	}
}

// TestPendingLogCompaction pins the rewrite: once garbage crosses the
// threshold the log shrinks to the live set and still replays.
func TestPendingLogCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := openPendingLog(fault.OS, dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	keep := transfer{Doc: "keeper", Peer: "http://n2"}
	if err := l.Add(keep); err != nil {
		t.Fatalf("add: %v", err)
	}
	for i := 0; i < compactThreshold; i++ {
		tr := transfer{Doc: fmt.Sprintf("doc-%03d", i), Peer: "http://n2"}
		if err := l.Add(tr); err != nil {
			t.Fatalf("add: %v", err)
		}
		if err := l.Done(tr); err != nil {
			t.Fatalf("done: %v", err)
		}
	}
	path := filepath.Join(dir, "pending.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if n := strings.Count(string(data), "\n"); n != 1 {
		t.Fatalf("compacted log has %d records, want 1", n)
	}
	// Appends after the rename go to the new file, not the old inode.
	if err := l.Add(transfer{Doc: "after", Peer: "http://n3"}); err != nil {
		t.Fatalf("add after compaction: %v", err)
	}
	l.Close()
	l2, err := openPendingLog(fault.OS, dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	got := l2.Pending()
	if len(got) != 2 || got[0] != (transfer{Doc: "after", Peer: "http://n3"}) || got[1] != keep {
		t.Fatalf("post-compaction replay = %+v", got)
	}
}
