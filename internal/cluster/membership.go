package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"
)

// DefaultProbeInterval is how often each peer's /healthz is probed.
const DefaultProbeInterval = 2 * time.Second

// DefaultProbeTimeout bounds one health probe round-trip.
const DefaultProbeTimeout = 2 * time.Second

// PeerState is one peer's health as the prober last saw it.
type PeerState struct {
	ID         string    `json:"id"` // advertise URL
	Up         bool      `json:"up"`
	Generation uint64    `json:"generation"` // bumps on every up/down transition
	LastProbe  time.Time `json:"last_probe,omitempty"`
	LastError  string    `json:"last_error,omitempty"`
	Docs       int       `json:"docs"` // catalog size at the last successful probe
}

// peer is the mutable record behind a PeerState, guarded by
// Membership.mu.
type peer struct {
	state PeerState
	names []string // last-known catalog, for failure attribution
}

// Membership tracks the health of every other node: a background
// prober drives /healthz with generation-numbered up/down transitions,
// and on each successful probe refreshes the peer's catalog name list
// (GET /cluster/docs) — the attribution the router needs to turn a
// failed peer into per-document error entries, and the baseline the
// replication-lag gauge compares pending transfers against. Peers
// start down and join the routable set on their first successful
// probe.
type Membership struct {
	self     string
	client   *http.Client
	interval time.Duration
	m        *clusterMetrics

	mu    sync.Mutex
	peers map[string]*peer

	// onUp, when non-nil, runs (outside mu) after a peer transitions
	// up — the replicator hooks it to retry transfers the peer missed.
	onUp func(peer string)

	// onRing, when non-nil, receives each healthy peer's current ring
	// description — the Node hooks it to adopt superseding rings, which
	// is how an operator-published membership change spreads without any
	// central coordinator.
	onRing func(Desc)

	stop chan struct{}
	done sync.WaitGroup
}

// newMembership builds the tracker for the given peers (self excluded
// by the caller).
func newMembership(self string, peers []string, client *http.Client, interval time.Duration, m *clusterMetrics) *Membership {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	mem := &Membership{
		self:     self,
		client:   client,
		interval: interval,
		m:        m,
		peers:    make(map[string]*peer),
		stop:     make(chan struct{}),
	}
	for _, p := range peers {
		if p != self {
			mem.peers[p] = &peer{state: PeerState{ID: p}}
		}
	}
	return mem
}

// Start launches the background prober. Stop ends it.
func (mem *Membership) Start() {
	mem.done.Add(1)
	go func() {
		defer mem.done.Done()
		mem.probeAll() // immediately, so the router has live peers at startup
		t := time.NewTicker(mem.interval)
		defer t.Stop()
		for {
			select {
			case <-mem.stop:
				return
			case <-t.C:
				mem.probeAll()
			}
		}
	}()
}

// Stop ends the prober and waits for the in-flight round to finish.
func (mem *Membership) Stop() {
	close(mem.stop)
	mem.done.Wait()
}

// probeAll probes every peer concurrently — one slow peer must not
// delay the health verdicts of the rest.
func (mem *Membership) probeAll() {
	mem.mu.Lock()
	ids := make([]string, 0, len(mem.peers))
	for id := range mem.peers {
		ids = append(ids, id)
	}
	mem.mu.Unlock()
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			mem.probe(id)
		}(id)
	}
	wg.Wait()
}

// probe runs one health check against id and records the transition.
func (mem *Membership) probe(id string) {
	ctx, cancel := context.WithTimeout(context.Background(), DefaultProbeTimeout)
	defer cancel()
	err := mem.healthz(ctx, id)
	var names []string
	if err == nil {
		// Refresh the catalog list only on healthy probes; a fetch
		// failure degrades attribution, not health (the stale list is
		// still the best available).
		names, _ = mem.fetchNames(ctx, id)
		mem.mu.Lock()
		onRing := mem.onRing
		mem.mu.Unlock()
		if onRing != nil {
			if d, rerr := mem.fetchRing(ctx, id); rerr == nil {
				onRing(d)
			}
		}
	}
	mem.record(id, err, names)
}

// fetchRing pulls the peer's current ring description — the pull half
// of the ring exchange (the push half is POST /cluster/ring).
func (mem *Membership) fetchRing(ctx context.Context, id string) (Desc, error) {
	var d Desc
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, id+"/cluster/ring", nil)
	if err != nil {
		return d, err
	}
	resp, err := mem.client.Do(req)
	if err != nil {
		return d, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return d, fmt.Errorf("cluster/ring: %s", resp.Status)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&d); err != nil {
		return d, err
	}
	return d, nil
}

func (mem *Membership) healthz(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, id+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := mem.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

// fetchNames pulls the peer's catalog names (GET /cluster/docs).
func (mem *Membership) fetchNames(ctx context.Context, id string) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, id+"/cluster/docs", nil)
	if err != nil {
		return nil, err
	}
	resp, err := mem.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster/docs: %s", resp.Status)
	}
	var body struct {
		Names []string `json:"names"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&body); err != nil {
		return nil, err
	}
	return body.Names, nil
}

// record applies one probe outcome, bumping the generation on a
// transition and notifying the up-hook when a peer comes back.
func (mem *Membership) record(id string, err error, names []string) {
	var cameUp bool
	mem.mu.Lock()
	p := mem.peers[id]
	if p == nil {
		mem.mu.Unlock()
		return
	}
	up := err == nil
	if up != p.state.Up || p.state.Generation == 0 {
		p.state.Generation++
		mem.m.transitions.Inc()
		cameUp = up
		if !up {
			log.Printf("cluster: peer %s down (gen %d): %v", id, p.state.Generation, err)
		} else if p.state.Generation > 1 {
			log.Printf("cluster: peer %s up (gen %d)", id, p.state.Generation)
		}
	}
	p.state.Up = up
	p.state.LastProbe = time.Now()
	p.state.LastError = ""
	if err != nil {
		p.state.LastError = err.Error()
	}
	if names != nil {
		p.names = names
		p.state.Docs = len(names)
	}
	onUp := mem.onUp
	mem.mu.Unlock()
	if cameUp && onUp != nil {
		onUp(id)
	}
}

// SetPeers reconciles the tracked peer set with ids (self excluded):
// nodes not yet tracked enter down and join the routable set on their
// first successful probe; tracked nodes absent from ids are dropped.
// The Node calls it on every ring adoption, so a membership change
// published through the ring exchange actually brings new nodes into
// probing, routing and replication — without it, record() would ignore
// them forever.
func (mem *Membership) SetPeers(ids []string) {
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		if id != mem.self {
			want[id] = true
		}
	}
	mem.mu.Lock()
	defer mem.mu.Unlock()
	for id := range want {
		if mem.peers[id] == nil {
			mem.peers[id] = &peer{state: PeerState{ID: id}}
		}
	}
	for id := range mem.peers {
		if !want[id] {
			delete(mem.peers, id)
		}
	}
}

// MarkDown records a peer failure observed outside the prober — the
// router calls it when a scatter request fails outright, so routing
// stops preferring the peer before the next probe confirms.
func (mem *Membership) MarkDown(id string, err error) {
	mem.record(id, fmt.Errorf("marked down: %w", err), nil)
}

// Up reports whether id is currently routable.
func (mem *Membership) Up(id string) bool {
	mem.mu.Lock()
	defer mem.mu.Unlock()
	p := mem.peers[id]
	return p != nil && p.state.Up
}

// UpPeers returns the currently routable peer IDs, sorted.
func (mem *Membership) UpPeers() []string {
	mem.mu.Lock()
	defer mem.mu.Unlock()
	var up []string
	for id, p := range mem.peers {
		if p.state.Up {
			up = append(up, id)
		}
	}
	sort.Strings(up)
	return up
}

// Names returns the last-known catalog of id (nil when never fetched).
// Callers must not mutate.
func (mem *Membership) Names(id string) []string {
	mem.mu.Lock()
	defer mem.mu.Unlock()
	if p := mem.peers[id]; p != nil {
		return p.names
	}
	return nil
}

// States snapshots every peer's health, sorted by ID — the
// /cluster/peers response and the peers-up gauge's source.
func (mem *Membership) States() []PeerState {
	mem.mu.Lock()
	defer mem.mu.Unlock()
	out := make([]PeerState, 0, len(mem.peers))
	for _, p := range mem.peers {
		out = append(out, p.state)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
