package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/store"
)

// Replication wire format (PUT /cluster/replicate?doc=NAME):
//
//	[4-byte BE archive length][archive bytes][4-byte BE sidecar length][sidecar bytes]
//
// with the whole body's CRC32C in the X-Cluster-Crc header. The
// receiver verifies the CRC before touching the frame; a mismatch is a
// 400 and the sender retries. Tombstones travel as DELETE with no body.
const crcHeader = "X-Cluster-Crc"

// Defaults for the replication retry budget; the compactor's own knobs
// are per-generation, these are per-transfer.
const (
	defaultSendAttempts = 4
	defaultSendBackoff  = 100 * time.Millisecond
	defaultSendTimeout  = 30 * time.Second
)

// Replicator streams freshly published documents to their replica
// owners. Transfers are recorded in a WAL-backed pending queue before
// the first attempt, so a crash between publish and delivery is
// repaired at the next start; a peer that is down keeps its transfers
// pending and receives them when the membership prober sees it return.
type Replicator struct {
	self   string
	st     *store.Store
	client *http.Client
	m      *clusterMetrics
	log    *pendingLog

	attempts int
	backoff  time.Duration

	ringFn func() *Ring // current ring (swapped by exchange)
	rf     int

	mu     sync.Mutex
	cond   *sync.Cond
	isUp   func(string) bool // health check; nil means assume reachable
	wake   bool
	closed bool
	done   sync.WaitGroup
}

// newReplicator wires the sender. ringFn must return the node's current
// ring (the Node swaps it on adoption); rf is the replication factor.
func newReplicator(self string, st *store.Store, fsys fault.FS, dir string, client *http.Client, ringFn func() *Ring, rf int, m *clusterMetrics) (*Replicator, error) {
	plog, err := openPendingLog(fsys, dir)
	if err != nil {
		return nil, err
	}
	r := &Replicator{
		self:     self,
		st:       st,
		client:   client,
		m:        m,
		log:      plog,
		attempts: defaultSendAttempts,
		backoff:  defaultSendBackoff,
		ringFn:   ringFn,
		rf:       rf,
	}
	r.cond = sync.NewCond(&r.mu)
	return r, nil
}

// Start launches the sender loop; anything replayed from the pending
// WAL is attempted immediately.
func (r *Replicator) Start() {
	r.done.Add(1)
	go func() {
		defer r.done.Done()
		r.run()
	}()
	if r.log.Len() > 0 {
		r.kick()
	}
}

// Stop ends the sender loop (pending transfers stay in the WAL for the
// next start) and closes the log.
func (r *Replicator) Stop() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cond.Broadcast()
	r.done.Wait()
	r.log.Close()
}

// Lag is the owed-transfer count — the replication-lag gauge's source.
func (r *Replicator) Lag() int { return r.log.Len() }

// kick wakes the sender loop.
func (r *Replicator) kick() {
	r.mu.Lock()
	r.wake = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

// PeerUp is the membership hook: a peer that just came back gets its
// pending transfers retried without waiting for new publishes.
func (r *Replicator) PeerUp(string) { r.kick() }

// Published is the ingest hook: the compactor just made doc durable
// (or erased it, tomb=true). Owed transfers are logged durably first,
// then the sender is woken — the publish itself never blocks on the
// network.
func (r *Replicator) Published(doc string, tomb bool) {
	ring := r.ringFn()
	if ring == nil || ring.Len() < 2 {
		return
	}
	var added bool
	for _, owner := range ring.Owners(doc, r.rf) {
		if owner == r.self {
			continue
		}
		if err := r.log.Add(transfer{Doc: doc, Peer: owner, Tomb: tomb}); err != nil {
			// The WAL append failed, but Add keeps the transfer in the
			// in-memory pending set regardless, so drain still attempts
			// delivery — only durability across a restart is lost.
			log.Printf("cluster: pending log append for %q: %v", doc, err)
		}
		added = true
	}
	if added {
		r.kick()
	}
}

// run is the sender loop: drain the pending set, sleep until kicked.
func (r *Replicator) run() {
	for {
		r.mu.Lock()
		for !r.wake && !r.closed {
			r.cond.Wait()
		}
		if r.closed {
			r.mu.Unlock()
			return
		}
		r.wake = false
		r.mu.Unlock()
		r.drain()
	}
}

// drain attempts every pending transfer once (each with its own capped
// retry budget). Transfers to down peers are skipped — the PeerUp hook
// re-kicks when they return, so there is no spin against a dead node.
func (r *Replicator) drain() {
	for _, t := range r.log.Pending() {
		r.mu.Lock()
		closed := r.closed
		r.mu.Unlock()
		if closed {
			return
		}
		if !r.peerUp(t.Peer) {
			continue
		}
		if err := r.send(t); err != nil {
			r.m.replFailures.Inc()
			log.Printf("cluster: replicating %q to %s: %v (left pending)", t.Doc, t.Peer, err)
			continue
		}
		r.m.replicated.Inc()
		if err := r.log.Done(t); err != nil {
			log.Printf("cluster: pending log done for %q: %v", t.Doc, err)
		}
	}
}

// peerUp consults the membership when wired; without one (tests) every
// peer is assumed reachable.
func (r *Replicator) peerUp(id string) bool {
	r.mu.Lock()
	up := r.isUp
	r.mu.Unlock()
	if up == nil {
		return true
	}
	return up(id)
}

// setUpFn wires the health check used to skip dead peers (the Node
// sets it to Membership.Up).
func (r *Replicator) setUpFn(fn func(string) bool) {
	r.mu.Lock()
	r.isUp = fn
	r.mu.Unlock()
}

// send ships one transfer with capped-backoff retries, reusing the
// compactor's retry helper.
func (r *Replicator) send(t transfer) error {
	retries, err := fault.Retry(r.attempts, r.backoff, 10*r.backoff, func() error {
		return r.sendOnce(t)
	})
	for i := 0; i < retries; i++ {
		r.m.replRetries.Inc()
	}
	return err
}

// sendOnce performs one PUT (or DELETE for a tombstone) against the
// peer's replication endpoint.
func (r *Replicator) sendOnce(t transfer) error {
	ctx, cancel := context.WithTimeout(context.Background(), defaultSendTimeout)
	defer cancel()
	target := t.Peer + "/cluster/replicate?doc=" + url.QueryEscape(t.Doc)
	if t.Tomb {
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, target, nil)
		if err != nil {
			return err
		}
		return r.do(req)
	}
	archive, sidecar, err := r.st.ReplicaPayload(t.Doc)
	if err != nil {
		// The document vanished between publish and send (removed or
		// re-tombstoned); nothing to ship.
		return fmt.Errorf("payload: %w", err)
	}
	body := frameReplica(archive, sidecar)
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, target, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(crcHeader, fmt.Sprintf("%08x", crc32.Checksum(body, pendingCRC)))
	return r.do(req)
}

// do runs one replication request and interprets the status.
func (r *Replicator) do(req *http.Request) error {
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("peer answered %s", resp.Status)
	}
	return nil
}

// frameReplica encodes the replication body:
// [4B archive len][archive][4B sidecar len][sidecar].
func frameReplica(archive, sidecar []byte) []byte {
	body := make([]byte, 0, 8+len(archive)+len(sidecar))
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(archive)))
	body = append(body, n[:]...)
	body = append(body, archive...)
	binary.BigEndian.PutUint32(n[:], uint32(len(sidecar)))
	body = append(body, n[:]...)
	body = append(body, sidecar...)
	return body
}

// parseReplicaFrame decodes a replication body, verifying the CRC from
// the request header first.
func parseReplicaFrame(body []byte, crcHex string) (archive, sidecar []byte, err error) {
	if fmt.Sprintf("%08x", crc32.Checksum(body, pendingCRC)) != crcHex {
		return nil, nil, fmt.Errorf("cluster: replica payload CRC mismatch")
	}
	if len(body) < 4 {
		return nil, nil, fmt.Errorf("cluster: replica frame truncated")
	}
	// Widen the lengths to uint64 BEFORE any arithmetic: a crafted alen
	// near MaxUint32 must fail the bounds check, not wrap it (and the
	// slice indices below) around.
	alen := uint64(binary.BigEndian.Uint32(body[:4]))
	if uint64(len(body)) < 8+alen {
		return nil, nil, fmt.Errorf("cluster: replica frame truncated")
	}
	archive = body[4 : 4+int(alen)]
	rest := body[4+int(alen):]
	slen := uint64(binary.BigEndian.Uint32(rest[:4]))
	if uint64(len(rest)) != 4+slen {
		return nil, nil, fmt.Errorf("cluster: replica frame truncated")
	}
	sidecar = rest[4 : 4+int(slen)]
	if len(sidecar) == 0 {
		sidecar = nil
	}
	return archive, sidecar, nil
}
