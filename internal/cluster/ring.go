// Package cluster turns a set of xcserve nodes into a sharded,
// replicated cluster. It has four layers:
//
//   - placement (ring.go): a consistent-hash ring with virtual nodes
//     maps document names to N replica owners. The ring is versioned and
//     exchanged over a small HTTP peer protocol; membership changes move
//     only ~1/N of the ownership, and Rebalance computes the exact,
//     deterministic move plan.
//
//   - replication (replicate.go, pending.go): when the write path
//     publishes a durable archive, the ingesting node streams the
//     archive + .xcs sidecar bytes to the document's other owners with
//     CRC verification and capped-backoff retries; a WAL-backed pending
//     queue survives restarts, so no transfer is ever lost.
//
//   - routing (router.go): a scatter-gather QueryAll sends the compiled
//     query *signature* with the query text to each live peer, so remote
//     nodes prune against their local path-synopsis indexes before
//     decoding anything — cross-node reads stay coordination-free, the
//     same plan/prune-first discipline the single-node path uses. The
//     router merges per-document results with replica dedup (first
//     healthy owner wins) and degrades per peer: a shed (429), timed-out
//     (504) or dead peer becomes that peer's per-document error entries,
//     never a failed request.
//
//   - membership (membership.go): /healthz-driven probing with
//     generation-numbered up/down transitions feeding the router, the
//     replicator and the metrics registry.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/store"
)

// DefaultVNodes is the virtual-node count per physical node. 64 points
// per node keeps the expected ownership imbalance under ~15% for small
// clusters while the ring stays tiny (a few KiB).
const DefaultVNodes = 64

// Ring is a consistent-hash ring mapping document names to replica
// owners. A Ring is immutable after Build — membership changes produce
// a new Ring with a higher version — so readers (the router, the
// replicator) can hold one without locks.
type Ring struct {
	version uint64
	epoch   uint64 // operator-advanced generation; 0 for a config-built ring
	vnodes  int
	nodes   []string // sorted node IDs (advertise URLs)
	points  []point  // sorted by hash
}

// point is one virtual node: a position on the ring owned by a node.
type point struct {
	hash uint64
	node string
}

// hash64 is the ring's hash: FNV-64a, stable across processes and
// platforms (placement must agree between peers that never met).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Build constructs a ring over the given node IDs with vnodes virtual
// nodes each (<= 0 selects DefaultVNodes). The version is derived
// deterministically from the membership, so independently configured
// peers with the same node set agree on both placement and version
// without any coordination. Node order does not matter.
func Build(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	// Drop duplicates: a node listed twice must not own twice the ring.
	uniq := sorted[:0]
	for i, n := range sorted {
		if i == 0 || n != sorted[i-1] {
			uniq = append(uniq, n)
		}
	}
	r := &Ring{vnodes: vnodes, nodes: uniq}
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	// The version folds the membership and vnode count: any two rings
	// with the same configuration share it, any change to either
	// produces a different one (modulo hash collision, which only costs
	// a redundant exchange).
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d;", vnodes)
	for _, n := range uniq {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	r.version = h.Sum64()
	return r
}

// Version identifies this ring's membership: a deterministic hash of
// the node set and vnode count, so independently configured peers with
// the same membership report the same version without coordination.
func (r *Ring) Version() uint64 { return r.version }

// Epoch is the ring's operator-advanced generation. Peers exchanging
// rings adopt the higher epoch (ties broken by version — deterministic,
// so the cluster converges); config-built rings are epoch 0.
func (r *Ring) Epoch() uint64 { return r.epoch }

// WithEpoch returns a copy of the ring at the given epoch — how an
// operator publishes a membership change: build the new ring, stamp an
// epoch above the cluster's current one, POST it to any node, and the
// exchange protocol spreads it.
func (r *Ring) WithEpoch(epoch uint64) *Ring {
	cp := *r
	cp.epoch = epoch
	return &cp
}

// Supersedes reports whether r should replace cur during a ring
// exchange: a strictly higher epoch always wins, and within an epoch a
// differing membership is broken deterministically by version, so two
// nodes exchanging rings converge on the same choice no matter who
// calls whom.
func (r *Ring) Supersedes(cur *Ring) bool {
	if cur == nil {
		return true
	}
	if r.epoch != cur.epoch {
		return r.epoch > cur.epoch
	}
	return r.version > cur.version
}

// Nodes returns the ring's node IDs, sorted. Callers must not mutate.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the number of physical nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Contains reports whether node is a member.
func (r *Ring) Contains(node string) bool {
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// Owners returns the n distinct nodes owning doc, in preference order:
// the first is the primary, the rest the replicas. Fewer than n nodes
// in the ring returns them all. Document names are hashed exactly as
// validated by store.ValidateDocName — Owners panics on an invalid
// name, because an unvalidated name must never reach placement (it
// could not have entered any node's catalog either).
func (r *Ring) Owners(doc string, n int) []string {
	if err := store.ValidateDocName(doc); err != nil {
		panic(fmt.Sprintf("cluster: placing invalid document name: %v", err))
	}
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(doc)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for k := 0; k < len(r.points) && len(owners) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			owners = append(owners, p.node)
		}
	}
	return owners
}

// Move is one step of a rebalance plan: doc must be copied to To (a new
// owner under the target ring) from one of From (its owners under the
// source ring, preference order).
type Move struct {
	Doc  string
	To   string
	From []string
}

// Rebalance computes the deterministic move plan that brings docs from
// old placement to new placement at replication factor rf: one Move per
// (document, gained owner). Documents are processed in sorted order and
// gained owners in new-ring preference order, so every node computing
// the same plan gets byte-identical output.
func Rebalance(old, new *Ring, docs []string, rf int) []Move {
	sorted := append([]string(nil), docs...)
	sort.Strings(sorted)
	var plan []Move
	for _, doc := range sorted {
		was := old.Owners(doc, rf)
		has := make(map[string]bool, len(was))
		for _, n := range was {
			has[n] = true
		}
		for _, n := range new.Owners(doc, rf) {
			if !has[n] {
				plan = append(plan, Move{Doc: doc, To: n, From: was})
			}
		}
	}
	return plan
}

// Desc is the ring's wire form for the peer protocol (GET/POST
// /cluster/ring): enough to rebuild an identical ring anywhere.
type Desc struct {
	Version uint64   `json:"version"`
	Epoch   uint64   `json:"epoch"`
	VNodes  int      `json:"vnodes"`
	Nodes   []string `json:"nodes"`
}

// Desc returns the ring's wire description.
func (r *Ring) Desc() Desc {
	return Desc{Version: r.version, Epoch: r.epoch, VNodes: r.vnodes,
		Nodes: append([]string(nil), r.nodes...)}
}

// FromDesc rebuilds a ring from its wire description. The version is
// recomputed from the membership, never trusted from the wire: a peer
// cannot claim a version its node set does not hash to. The epoch is
// carried as sent — it is an operator assertion, not derived state.
func FromDesc(d Desc) *Ring {
	return Build(d.Nodes, d.VNodes).WithEpoch(d.Epoch)
}
