package cluster

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// TestSetPeersReconciles pins the membership side of a ring change:
// nodes added to the set become trackable (record no longer ignores
// them), nodes removed are dropped, and self is never tracked.
func TestSetPeersReconciles(t *testing.T) {
	const self = "http://self"
	mem := newMembership(self, []string{self, "http://a"}, http.DefaultClient, time.Hour, newClusterMetrics(obs.New()))

	mem.SetPeers([]string{self, "http://a", "http://b"})
	if mem.Up("http://b") {
		t.Fatal("a freshly adopted peer must start down")
	}
	mem.record("http://b", nil, []string{"doc"})
	if !mem.Up("http://b") {
		t.Fatal("record ignored the adopted peer; it can never come up")
	}

	mem.SetPeers([]string{self, "http://b"})
	states := mem.States()
	if len(states) != 1 || states[0].ID != "http://b" {
		t.Fatalf("states after removing a: %+v, want just b", states)
	}
}

// TestRingAdoptionTracksNewPeers pins the operator membership-change
// flow end to end at the Node level: adopting a superseding ring with a
// new node starts tracking it, and a later ring without an old peer
// stops tracking that one.
func TestRingAdoptionTracksNewPeers(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	n, err := New(st, Config{Self: "http://n1", Peers: []string{"http://n1", "http://n2"}})
	if err != nil {
		t.Fatal(err)
	}

	adopted, err := n.AdoptDesc(Desc{Epoch: 1, Nodes: []string{"http://n1", "http://n2", "http://n3"}})
	if err != nil || !adopted {
		t.Fatalf("adopt grown ring: adopted=%v err=%v", adopted, err)
	}
	tracked := make(map[string]bool)
	for _, ps := range n.Membership().States() {
		tracked[ps.ID] = true
	}
	if !tracked["http://n3"] {
		t.Fatalf("new ring member not tracked by membership: %v", tracked)
	}

	adopted, err = n.AdoptDesc(Desc{Epoch: 2, Nodes: []string{"http://n1", "http://n3"}})
	if err != nil || !adopted {
		t.Fatalf("adopt shrunk ring: adopted=%v err=%v", adopted, err)
	}
	for _, ps := range n.Membership().States() {
		if ps.ID == "http://n2" {
			t.Fatal("removed ring member still tracked by membership")
		}
	}
}
