package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/fault"
)

// pendingLog is the WAL backing the replication queue: an append-only
// file of CRC-framed records under <store>/cluster/pending.log, so a
// restart never loses a transfer the compactor already promised. Each
// record is one line — JSON body, a tab, the body's CRC32C in hex —
// replayed at open with torn-tail tolerance (everything after the first
// unverifiable line is discarded, exactly like the ingest WAL's
// contract). The live state it rebuilds is a set of (doc, peer)
// transfers still owed; once the done records outnumber the pending
// set the log is compacted by rewrite (tmp+fsync+rename).
type pendingLog struct {
	fs   fault.FS
	path string

	mu      sync.Mutex
	f       fault.File
	pending map[transferKey]transfer
	garbage int // superseded records written since the last compaction
}

// transfer is one owed replication: ship doc to peer (or, for a
// tombstone, tell peer to erase it).
type transfer struct {
	Doc  string `json:"doc"`
	Peer string `json:"peer"`
	Tomb bool   `json:"tomb,omitempty"`
}

// transferKey identifies a transfer: re-enqueueing the same (doc, peer)
// supersedes the previous record (latest version wins — shipping the
// current payload twice is idempotent, shipping a stale one never
// happens because payloads are read at send time).
type transferKey struct {
	doc  string
	peer string
}

// pendingRecord is one log line's body.
type pendingRecord struct {
	Op string `json:"op"` // "add" or "done"
	transfer
}

var pendingCRC = crc32.MakeTable(crc32.Castagnoli)

// compactThreshold is how much garbage (done or superseded records)
// accumulates before the log is rewritten in place.
const compactThreshold = 256

// openPendingLog opens (creating if needed) the pending-replication
// log under dir and replays it.
func openPendingLog(fsys fault.FS, dir string) (*pendingLog, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: pending log dir: %w", err)
	}
	l := &pendingLog{
		fs:      fsys,
		path:    filepath.Join(dir, "pending.log"),
		pending: make(map[transferKey]transfer),
	}
	if err := l.replay(); err != nil {
		return nil, err
	}
	f, err := fsys.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: opening pending log: %w", err)
	}
	l.f = f
	return l, nil
}

// replay rebuilds the pending set from the log. A line that fails its
// CRC (torn tail after a crash) ends the replay; everything before it
// is trusted, and the file is truncated to the verified prefix so the
// tear cannot shadow future appends.
func (l *pendingLog) replay() error {
	data, err := l.fs.ReadFile(l.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("cluster: reading pending log: %w", err)
	}
	valid := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		rec, ok := parsePendingLine(line)
		if !ok {
			break
		}
		l.apply(rec)
		valid += len(line) + 1
	}
	if valid < len(data) {
		if err := l.fs.Truncate(l.path, int64(valid)); err != nil {
			return fmt.Errorf("cluster: truncating torn pending log: %w", err)
		}
	}
	return nil
}

// parsePendingLine verifies and decodes one log line.
func parsePendingLine(line []byte) (pendingRecord, bool) {
	var rec pendingRecord
	tab := bytes.LastIndexByte(line, '\t')
	if tab < 0 {
		return rec, false
	}
	body, sum := line[:tab], line[tab+1:]
	if fmt.Sprintf("%08x", crc32.Checksum(body, pendingCRC)) != string(sum) {
		return rec, false
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// apply folds one record into the live set.
func (l *pendingLog) apply(rec pendingRecord) {
	key := transferKey{doc: rec.Doc, peer: rec.Peer}
	switch rec.Op {
	case "add":
		if _, dup := l.pending[key]; dup {
			l.garbage++ // superseded add
		}
		l.pending[key] = rec.transfer
	case "done":
		delete(l.pending, key)
		l.garbage += 2 // the add and the done are both dead weight now
	}
}

// append writes one record durably (fsync per append: the queue is low
// rate — one record per published document per peer — and a lost
// record is a lost replica). A closed log is an error, not a panic —
// a late Published hook during shutdown must not crash the flush.
func (l *pendingLog) append(rec pendingRecord) error {
	if l.f == nil {
		return fmt.Errorf("cluster: pending log closed")
	}
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%s\t%08x\n", body, crc32.Checksum(body, pendingCRC))
	if _, err := l.f.Write([]byte(line)); err != nil {
		return fmt.Errorf("cluster: appending pending log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("cluster: syncing pending log: %w", err)
	}
	return nil
}

// Add records a transfer owed. Safe for concurrent use. The in-memory
// pending set is updated before the durable append, so even when the
// append fails (disk fault, closed log) drain still attempts delivery
// for this process's lifetime — the error only reports the durability
// gap across a restart.
func (l *pendingLog) Add(t transfer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.apply(pendingRecord{Op: "add", transfer: t})
	return l.append(pendingRecord{Op: "add", transfer: t})
}

// Done records a transfer delivered, compacting the log once enough
// garbage has accumulated. The in-memory set drops the transfer even
// when the append fails: delivery already happened, and losing the
// done record only costs one idempotent re-send at the next start.
func (l *pendingLog) Done(t transfer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.apply(pendingRecord{Op: "done", transfer: t})
	if err := l.append(pendingRecord{Op: "done", transfer: t}); err != nil {
		return err
	}
	if l.garbage >= compactThreshold {
		return l.compactLocked()
	}
	return nil
}

// Pending snapshots the owed transfers, sorted (doc, then peer) so
// retry order is deterministic.
func (l *pendingLog) Pending() []transfer {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]transfer, 0, len(l.pending))
	for _, t := range l.pending {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Doc != out[j].Doc {
			return out[i].Doc < out[j].Doc
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

// Len returns the owed-transfer count (the replication-lag gauge).
func (l *pendingLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending)
}

// compactLocked rewrites the log with only the live pending set, via
// temp file + fsync + rename. Caller holds l.mu.
func (l *pendingLog) compactLocked() error {
	tmp, err := l.fs.CreateTemp(filepath.Dir(l.path), ".pending-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		l.fs.Remove(tmpName)
		return fmt.Errorf("cluster: compacting pending log: %w", err)
	}
	for _, t := range l.pendingSortedLocked() {
		body, err := json.Marshal(pendingRecord{Op: "add", transfer: t})
		if err != nil {
			return fail(err)
		}
		if _, err := fmt.Fprintf(tmp, "%s\t%08x\n", body, crc32.Checksum(body, pendingCRC)); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		l.fs.Remove(tmpName)
		return fmt.Errorf("cluster: compacting pending log: %w", err)
	}
	if err := l.fs.Rename(tmpName, l.path); err != nil {
		l.fs.Remove(tmpName)
		return fmt.Errorf("cluster: compacting pending log: %w", err)
	}
	// Reopen the append handle on the fresh file; the old descriptor
	// points at the unlinked inode.
	old := l.f
	f, err := l.fs.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: reopening pending log: %w", err)
	}
	l.f = f
	old.Close()
	l.garbage = 0
	return nil
}

// pendingSortedLocked is Pending without the lock round.
func (l *pendingLog) pendingSortedLocked() []transfer {
	out := make([]transfer, 0, len(l.pending))
	for _, t := range l.pending {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Doc != out[j].Doc {
			return out[i].Doc < out[j].Doc
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

// Close closes the append handle.
func (l *pendingLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
