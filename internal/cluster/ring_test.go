package cluster

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// testDocs generates n valid document names.
func testDocs(n int) []string {
	docs := make([]string, n)
	for i := range docs {
		docs[i] = fmt.Sprintf("doc-%04d", i)
	}
	return docs
}

func testNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://node%d:8344", i)
	}
	return nodes
}

// TestRingOwnersDeterministic pins the placement contract: owners are
// stable across independently built rings (peers that never exchanged a
// byte agree), node order in the input is irrelevant, and replica sets
// are always distinct nodes.
func TestRingOwnersDeterministic(t *testing.T) {
	nodes := testNodes(5)
	a := Build(nodes, 0)
	shuffled := []string{nodes[3], nodes[0], nodes[4], nodes[4], nodes[1], nodes[2]} // dup too
	b := Build(shuffled, 0)
	if a.Version() != b.Version() {
		t.Fatalf("same membership, different versions: %x vs %x", a.Version(), b.Version())
	}
	for _, doc := range testDocs(200) {
		oa, ob := a.Owners(doc, 3), b.Owners(doc, 3)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("doc %s: owners %v vs %v from equal rings", doc, oa, ob)
		}
		if len(oa) != 3 {
			t.Fatalf("doc %s: %d owners, want 3", doc, len(oa))
		}
		seen := map[string]bool{}
		for _, o := range oa {
			if seen[o] {
				t.Fatalf("doc %s: replica set %v repeats a node", doc, oa)
			}
			seen[o] = true
		}
	}
	// More replicas than nodes: all nodes, still distinct.
	if got := a.Owners("doc-0001", 99); len(got) != 5 {
		t.Fatalf("rf over cluster size returned %d owners, want 5", len(got))
	}
}

// TestRingOwnersRejectsInvalidName pins the validation coupling: a name
// store.ValidateDocName rejects must never reach placement.
func TestRingOwnersRejectsInvalidName(t *testing.T) {
	r := Build(testNodes(3), 0)
	defer func() {
		if recover() == nil {
			t.Fatalf("Owners accepted a traversal name")
		}
	}()
	r.Owners("../escape", 2)
}

// TestRingJoinMovesAboutOneOverN is the consistent-hashing property: a
// node joining an N-node ring re-homes roughly 1/(N+1) of the primary
// assignments, and every document that moves, moves to the new node.
func TestRingJoinMovesAboutOneOverN(t *testing.T) {
	docs := testDocs(4000)
	old := Build(testNodes(4), 0)
	grown := Build(testNodes(5), 0) // adds node4
	moved := 0
	for _, doc := range docs {
		was, is := old.Owners(doc, 1)[0], grown.Owners(doc, 1)[0]
		if was == is {
			continue
		}
		moved++
		if is != "http://node4:8344" {
			t.Fatalf("doc %s moved %s -> %s, not to the joining node", doc, was, is)
		}
	}
	// Expected fraction 1/5 = 800 of 4000. Allow a generous band for
	// hash variance at 64 vnodes.
	if moved < 400 || moved > 1400 {
		t.Fatalf("join moved %d/4000 primaries, want roughly 800 (1/5)", moved)
	}

	// Leave is symmetric: removing the node moves exactly those back.
	back := 0
	for _, doc := range docs {
		if grown.Owners(doc, 1)[0] != old.Owners(doc, 1)[0] {
			back++
		}
	}
	if back != moved {
		t.Fatalf("leave moved %d, join moved %d — not symmetric", back, moved)
	}
}

// TestRingOwnershipPartition pins the coverage property: the union of
// per-node ownership equals the full catalog, each document counted
// exactly rf times.
func TestRingOwnershipPartition(t *testing.T) {
	const rf = 2
	nodes := testNodes(4)
	r := Build(nodes, 0)
	docs := testDocs(1000)
	owned := make(map[string][]string) // node -> docs
	for _, doc := range docs {
		for _, o := range r.Owners(doc, rf) {
			owned[o] = append(owned[o], doc)
		}
	}
	counts := make(map[string]int)
	for node, ds := range owned {
		if len(ds) == 0 {
			t.Fatalf("node %s owns nothing over %d docs", node, len(docs))
		}
		for _, d := range ds {
			counts[d]++
		}
	}
	if len(counts) != len(docs) {
		t.Fatalf("union covers %d docs, want %d", len(counts), len(docs))
	}
	for d, c := range counts {
		if c != rf {
			t.Fatalf("doc %s owned by %d nodes, want %d", d, c, rf)
		}
	}
}

// TestRebalancePlan pins the move-plan contract: deterministic output,
// only gained owners produce moves, and sources are the old owners.
func TestRebalancePlan(t *testing.T) {
	docs := testDocs(300)
	old := Build(testNodes(3), 0)
	grown := Build(testNodes(4), 0)
	plan := Rebalance(old, grown, docs, 2)
	if len(plan) == 0 {
		t.Fatalf("growing the ring produced an empty plan")
	}
	again := Rebalance(old, grown, docs, 2)
	if !reflect.DeepEqual(plan, again) {
		t.Fatalf("rebalance plan is not deterministic")
	}
	if !sort.SliceIsSorted(plan, func(i, j int) bool { return plan[i].Doc <= plan[j].Doc }) {
		t.Fatalf("plan not in sorted doc order")
	}
	for _, mv := range plan {
		oldOwners := old.Owners(mv.Doc, 2)
		for _, o := range oldOwners {
			if o == mv.To {
				t.Fatalf("move %v targets a node that already owned the doc", mv)
			}
		}
		if !reflect.DeepEqual(mv.From, oldOwners) {
			t.Fatalf("move %v sources %v, want old owners %v", mv, mv.From, oldOwners)
		}
	}
}

// TestRingExchange pins the adoption rules: the wire version is
// recomputed (never trusted), higher epochs win, and epoch ties break
// deterministically by version so both sides of an exchange converge.
func TestRingExchange(t *testing.T) {
	cur := Build(testNodes(3), 0).WithEpoch(3)

	// A peer claiming a bogus version for its membership gets corrected.
	d := Build(testNodes(4), 0).WithEpoch(4).Desc()
	d.Version = 12345
	adopted := FromDesc(d)
	if adopted.Version() == 12345 {
		t.Fatalf("wire version was trusted")
	}
	if adopted.Version() != Build(testNodes(4), 0).Version() {
		t.Fatalf("recomputed version does not match membership")
	}
	if !adopted.Supersedes(cur) {
		t.Fatalf("epoch 4 must supersede epoch 3")
	}
	if cur.Supersedes(adopted) {
		t.Fatalf("supersedes is not antisymmetric across epochs")
	}

	// Same epoch, different membership: exactly one side wins, both agree.
	x := Build(testNodes(3), 0).WithEpoch(5)
	y := Build(testNodes(4), 0).WithEpoch(5)
	if x.Supersedes(y) == y.Supersedes(x) {
		t.Fatalf("epoch tie must resolve to exactly one winner")
	}
	// Identical rings: neither supersedes (no adoption churn).
	z := Build(testNodes(3), 0).WithEpoch(5)
	if x.Supersedes(z) || z.Supersedes(x) {
		t.Fatalf("identical rings must not supersede each other")
	}
}
