package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/store"
	"repro/internal/xpath"
)

// PeerQuery is the body of POST /cluster/query: the query text plus its
// compiled signature, shipped ahead so the peer can prune against its
// local path-synopsis index before compiling — when the signature alone
// proves every local document empty, the peer answers without even
// parsing the query. Max is the *global* paths budget; peers render
// each document independently up to it and the router re-applies the
// shared budget after the merge.
type PeerQuery struct {
	Query string         `json:"query"`
	Sig   *xpath.SigWire `json:"sig,omitempty"`
	Max   int            `json:"max"`
}

// Router fans a catalog-wide query out to every live peer and merges
// the partial fan-outs into one response indistinguishable from a
// single node holding the union catalog. Failures degrade per peer: a
// shed (429), timed-out (504 or transport deadline) or unreachable peer
// contributes per-document error entries for the documents only it
// could have answered — the request as a whole still succeeds, exactly
// like the single-node degraded-serving contract.
type Router struct {
	self    string
	st      *store.Store
	mem     *Membership
	client  *http.Client
	ringFn  func() *Ring
	rf      int
	timeout time.Duration
	m       *clusterMetrics
}

// peerAnswer is one target's contribution to a scatter.
type peerAnswer struct {
	peer       string
	resp       *store.FanoutResponse
	err        error  // transport or decode failure
	status     int    // HTTP status when the peer answered non-200
	retryAfter string // Retry-After from a 429
	timedOut   bool
}

// QueryAll runs one clustered fan-out: compile locally (a bad query
// fails fast without touching the network), scatter signature+query to
// every live peer while this node evaluates its own catalog, merge with
// replica dedup, re-apply the global paths budget in catalog order.
func (rt *Router) QueryAll(ctx context.Context, query string, max int) (*store.FanoutResponse, error) {
	prog, err := xpath.CompileQuery(query)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rt.m.scatters.Inc()
	if rt.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.timeout)
		defer cancel()
	}

	peers := rt.mem.UpPeers()
	answers := make([]peerAnswer, len(peers)+1)
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			answers[i+1] = rt.askPeer(ctx, p, query, prog.Sig, max)
		}(i, p)
	}
	local, lerr := rt.st.FanoutLocal(ctx, query, max)
	answers[0] = peerAnswer{peer: rt.self, resp: local, err: lerr,
		timedOut: errors.Is(lerr, context.DeadlineExceeded)}
	wg.Wait()

	resp := rt.merge(query, max, answers)
	resp.WallNanos = int64(time.Since(start))
	rt.m.scatter.ObserveSince(start)
	return resp, nil
}

// askPeer sends one scatter request.
func (rt *Router) askPeer(ctx context.Context, peer, query string, sig *xpath.Signature, max int) peerAnswer {
	ans := peerAnswer{peer: peer}
	body, err := json.Marshal(PeerQuery{Query: query, Sig: sig.Wire(), Max: max})
	if err != nil {
		ans.err = err
		return ans
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/cluster/query", bytes.NewReader(body))
	if err != nil {
		ans.err = err
		return ans
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		ans.err = err
		ans.timedOut = errors.Is(err, context.DeadlineExceeded)
		return ans
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var fr store.FanoutResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&fr); err != nil {
			ans.err = fmt.Errorf("decoding peer response: %w", err)
			return ans
		}
		ans.resp = &fr
	case http.StatusTooManyRequests:
		ans.status = resp.StatusCode
		ans.retryAfter = resp.Header.Get("Retry-After")
	case http.StatusGatewayTimeout:
		ans.status = resp.StatusCode
		ans.timedOut = true
	default:
		ans.status = resp.StatusCode
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		ans.err = fmt.Errorf("peer answered %s: %s", resp.Status, bytes.TrimSpace(b))
	}
	return ans
}

// merge folds the per-target answers into one FanoutResponse:
//
//   - every healthy per-document result is a merge candidate; when
//     replicas answered for the same document, the first healthy owner
//     in ring preference order wins and the duplicates are discarded,
//   - a failed peer's documents (its last-known catalog, from the
//     membership prober) that no replica covered become per-document
//     error entries — with the Retry-After hint preserved for sheds —
//     and the peer is marked suspect for timeouts and transport errors,
//   - the surviving documents are sorted into global catalog order and
//     the shared paths budget is re-applied, reproducing the
//     single-node truncation byte for byte.
func (rt *Router) merge(query string, max int, answers []peerAnswer) *store.FanoutResponse {
	byDoc := make(map[string]map[string]store.QueryResponse) // doc → peer → result
	failedBy := make(map[string]store.FanoutError)           // doc → error entry (no healthy result)
	answered := make(map[string]bool)                        // peers that returned a response
	for _, ans := range answers {
		if ans.resp == nil {
			continue
		}
		answered[ans.peer] = true
		for _, qr := range ans.resp.Docs {
			// A buggy or version-skewed peer must degrade, not panic:
			// Ring.Owners (via pick) rejects unvalidated names hard, so
			// drop anything a peer returned that no catalog could hold.
			if err := store.ValidateDocName(qr.Doc); err != nil {
				log.Printf("cluster: dropping invalid document name from peer %s: %v", ans.peer, err)
				continue
			}
			m := byDoc[qr.Doc]
			if m == nil {
				m = make(map[string]store.QueryResponse)
				byDoc[qr.Doc] = m
			}
			m[ans.peer] = qr
		}
		for _, fe := range ans.resp.Failed {
			if _, dup := failedBy[fe.Doc]; !dup {
				failedBy[fe.Doc] = fe
			}
		}
	}

	// Degrade the targets that failed: attribute their last-known
	// documents, preserve shed hints, and feed the health tracker.
	for _, ans := range answers {
		if ans.resp != nil {
			continue
		}
		rt.notePeerFailure(ans)
		msg := rt.failureMessage(ans)
		for _, doc := range rt.lastKnownDocs(ans.peer) {
			if byDoc[doc] != nil {
				continue // a replica covered it
			}
			if _, dup := failedBy[doc]; dup {
				continue
			}
			failedBy[doc] = store.FanoutError{Doc: doc, Error: msg, RetryAfter: ans.retryAfter}
		}
	}

	ring := rt.ringFn()
	resp := &store.FanoutResponse{Query: query, Docs: []store.QueryResponse{}, Workers: rt.st.Workers()}
	docs := make([]string, 0, len(byDoc))
	for doc := range byDoc {
		docs = append(docs, doc)
		delete(failedBy, doc) // healthy result beats a failure entry
	}
	sort.Strings(docs)
	remaining := max
	for _, doc := range docs {
		candidates := byDoc[doc]
		qr := rt.pick(ring, doc, candidates)
		rt.m.mergedDocs.Inc()
		for i := 1; i < len(candidates); i++ {
			rt.m.dedupedDocs.Inc()
		}
		if len(qr.Paths) > remaining {
			qr.Paths = qr.Paths[:remaining]
		}
		if remaining == 0 && qr.Direct {
			// A synopsis-direct document past budget exhaustion never
			// runs the lazy evaluation on a single node (Paths(0) skips
			// the fallback), so its engine stats stay zero there; the
			// peer rendered with the full per-document cap, so mirror
			// the single-node shape.
			qr.SelectedDAG, qr.VertsBefore, qr.EdgesBefore = 0, 0, 0
			qr.VertsAfter, qr.EdgesAfter = 0, 0
			qr.PrepNanos, qr.EvalNanos = 0, 0
		}
		remaining -= len(qr.Paths)
		if qr.Pruned {
			resp.Pruned++
		}
		if qr.Direct {
			resp.Direct++
		}
		resp.Docs = append(resp.Docs, qr)
		resp.TotalMatches += qr.Matches
	}
	for _, fe := range failedBy {
		resp.Failed = append(resp.Failed, fe)
		rt.m.degradedDocs.Inc()
	}
	sort.Slice(resp.Failed, func(i, j int) bool { return resp.Failed[i].Doc < resp.Failed[j].Doc })
	return resp
}

// pick chooses one candidate result for doc: the first healthy owner in
// ring preference order, falling back to the lexicographically first
// answering peer when no owner answered (a document parked on a
// non-owner, e.g. mid-rebalance).
func (rt *Router) pick(ring *Ring, doc string, candidates map[string]store.QueryResponse) store.QueryResponse {
	if ring != nil {
		for _, owner := range ring.Owners(doc, rt.rf) {
			if qr, ok := candidates[owner]; ok {
				return qr
			}
		}
	}
	peers := make([]string, 0, len(candidates))
	for p := range candidates {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	return candidates[peers[0]]
}

// failureMessage renders the per-document error text for a failed peer.
func (rt *Router) failureMessage(ans peerAnswer) string {
	switch {
	case ans.status == http.StatusTooManyRequests:
		return fmt.Sprintf("peer %s shed the request (429)", ans.peer)
	case ans.timedOut:
		return fmt.Sprintf("peer %s timed out", ans.peer)
	case ans.err != nil:
		return fmt.Sprintf("peer %s: %v", ans.peer, ans.err)
	default:
		return fmt.Sprintf("peer %s failed (status %d)", ans.peer, ans.status)
	}
}

// notePeerFailure updates per-peer counters and health for one failed
// target. A shed peer is alive — it answered — so only timeouts and
// transport errors make it suspect.
func (rt *Router) notePeerFailure(ans peerAnswer) {
	if ans.peer == rt.self {
		return
	}
	switch {
	case ans.status == http.StatusTooManyRequests:
		rt.m.peerShed(ans.peer).Inc()
	case ans.timedOut:
		rt.m.peerTimeouts(ans.peer).Inc()
		rt.mem.MarkDown(ans.peer, errors.New("scatter timeout"))
	default:
		rt.m.peerErrors(ans.peer).Inc()
		err := ans.err
		if err == nil {
			err = fmt.Errorf("status %d", ans.status)
		}
		rt.mem.MarkDown(ans.peer, err)
	}
}

// lastKnownDocs returns the catalog to attribute to a failed target:
// for the local node its live catalog, for a peer the prober's
// last-known list.
func (rt *Router) lastKnownDocs(peer string) []string {
	if peer == rt.self {
		return rt.st.Names()
	}
	return rt.mem.Names(peer)
}
