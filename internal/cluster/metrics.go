package cluster

import (
	"repro/internal/obs"
)

// clusterMetrics is the cluster subsystem's handle set in the store's
// shared obs.Registry: one registry per process, so /metrics and /stats
// report cluster state next to serving state. Per-peer counters are
// labeled by the peer's advertise URL.
type clusterMetrics struct {
	reg *obs.Registry

	scatter *obs.Histogram // wall time per scatter-gather fan-out

	scatters     *obs.Counter // scatter-gather fan-outs routed
	sigPruned    *obs.Counter // documents pruned by a wire signature before compile
	mergedDocs   *obs.Counter // per-document results merged into responses
	dedupedDocs  *obs.Counter // replica duplicates discarded (first healthy owner won)
	degradedDocs *obs.Counter // per-document error entries emitted for failed peers

	replicated   *obs.Counter // documents successfully replicated to a peer
	replRetries  *obs.Counter // replication sends re-attempted after a failure
	replFailures *obs.Counter // sends that exhausted their retry budget (stay pending)
	replReceived *obs.Counter // replica payloads accepted from peers

	transitions *obs.Counter // peer up/down transitions (generation bumps)
	ringAdopted *obs.Counter // ring descriptions adopted from peers
}

func newClusterMetrics(r *obs.Registry) *clusterMetrics {
	return &clusterMetrics{
		reg: r,

		scatter: r.Histogram("xc_cluster_scatter_seconds",
			"Wall time per scatter-gather cluster fan-out.", obs.UnitSeconds),

		scatters: r.Counter("xc_cluster_scatters_total",
			"Scatter-gather cluster fan-outs routed."),
		sigPruned: r.Counter("xc_cluster_sig_pruned_total",
			"Documents peers pruned from the shipped query signature before compiling."),
		mergedDocs: r.Counter("xc_cluster_merged_docs_total",
			"Per-document results merged into cluster responses."),
		dedupedDocs: r.Counter("xc_cluster_deduped_docs_total",
			"Replica duplicates discarded during merge (first healthy owner wins)."),
		degradedDocs: r.Counter("xc_cluster_degraded_docs_total",
			"Per-document error entries emitted for shed, timed-out or down peers."),

		replicated: r.Counter("xc_cluster_replicated_docs_total",
			"Documents successfully replicated to a peer."),
		replRetries: r.Counter("xc_cluster_replication_retries_total",
			"Replication sends re-attempted after a transient failure."),
		replFailures: r.Counter("xc_cluster_replication_failures_total",
			"Replication sends that exhausted their retry budget (left pending)."),
		replReceived: r.Counter("xc_cluster_replicas_received_total",
			"Replica payloads accepted and catalogued from peers."),

		transitions: r.Counter("xc_cluster_peer_transitions_total",
			"Peer up/down health transitions (generation bumps)."),
		ringAdopted: r.Counter("xc_cluster_ring_adoptions_total",
			"Ring descriptions adopted from peers during exchange."),
	}
}

// peerShed returns the per-peer counter of requests a peer shed (429).
func (m *clusterMetrics) peerShed(peer string) *obs.Counter {
	return m.reg.LabeledCounter("xc_cluster_peer_shed_total",
		"Scatter requests a peer shed with 429.", obs.Label("peer", peer))
}

// peerTimeouts returns the per-peer counter of timed-out scatter
// requests (504 from the peer, or the router's own deadline).
func (m *clusterMetrics) peerTimeouts(peer string) *obs.Counter {
	return m.reg.LabeledCounter("xc_cluster_peer_timeouts_total",
		"Scatter requests to a peer that timed out (504 or router deadline).", obs.Label("peer", peer))
}

// peerErrors returns the per-peer counter of failed scatter requests
// (connection refused, 5xx other than 504, bad payloads).
func (m *clusterMetrics) peerErrors(peer string) *obs.Counter {
	return m.reg.LabeledCounter("xc_cluster_peer_errors_total",
		"Scatter requests to a peer that failed outright.", obs.Label("peer", peer))
}
