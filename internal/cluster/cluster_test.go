package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/container"
	"repro/internal/corpus"
	"repro/internal/store"
)

// encodeArchive compresses one XML document into archive bytes.
func encodeArchive(t *testing.T, doc []byte) []byte {
	t.Helper()
	a, err := container.Split(doc)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	var buf bytes.Buffer
	if err := codec.EncodeArchive(&buf, a); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// smallCorpora generates one modest document per corpus.
func smallCorpora(t *testing.T) map[string][]byte {
	t.Helper()
	docs := make(map[string][]byte)
	for _, c := range corpus.Catalog() {
		scale := c.DefaultScale / 40
		if scale < 3 {
			scale = 3
		}
		docs[c.Name] = c.Generate(scale, 7)
	}
	return docs
}

// swapHandler lets an httptest server start before the handler exists —
// the node needs the server's URL (its advertise address) to be built,
// and the handler needs the node.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "booting", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// testNode is one in-process cluster member.
type testNode struct {
	url     string
	st      *store.Store
	node    *Node
	srv     *httptest.Server
	swap    *swapHandler
	handler http.Handler // the real cluster handler, for un-partitioning
}

// startCluster boots an n-node in-process cluster with the documents
// pre-placed on their ring owners (rf copies each) and waits for the
// membership probers to converge.
func startCluster(t *testing.T, nNodes, rf int, docs map[string][]byte) []*testNode {
	t.Helper()
	swaps := make([]*swapHandler, nNodes)
	urls := make([]string, nNodes)
	srvs := make([]*httptest.Server, nNodes)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		srvs[i] = httptest.NewServer(swaps[i])
		urls[i] = srvs[i].URL
		t.Cleanup(srvs[i].Close)
	}

	ring := Build(urls, 0)
	byURL := make(map[string]int, nNodes)
	for i, u := range urls {
		byURL[u] = i
	}
	dirs := make([]string, nNodes)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	for name, doc := range docs {
		raw := encodeArchive(t, doc)
		for _, owner := range ring.Owners(name, rf) {
			path := filepath.Join(dirs[byURL[owner]], name+store.Ext)
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	nodes := make([]*testNode, nNodes)
	for i := range nodes {
		st, err := store.Open(dirs[i], store.Options{})
		if err != nil {
			t.Fatalf("open store %d: %v", i, err)
		}
		t.Cleanup(func() { st.Close() })
		n, err := New(st, Config{
			Self:              urls[i],
			Peers:             urls,
			ReplicationFactor: rf,
			ProbeInterval:     25 * time.Millisecond,
			ScatterTimeout:    20 * time.Second,
			QueryTimeout:      20 * time.Second,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		h := n.Handler(store.NewHandler(st, store.ServerOptions{}), 100)
		swaps[i].set(h)
		n.Start()
		t.Cleanup(n.Stop)
		nodes[i] = &testNode{url: urls[i], st: st, node: n, srv: srvs[i], swap: swaps[i], handler: h}
	}

	waitFor(t, "membership convergence", func() bool {
		for _, tn := range nodes {
			if len(tn.node.Membership().UpPeers()) != nNodes-1 {
				return false
			}
		}
		return true
	})
	return nodes
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fetchFanout GETs /query?q= and decodes the fan-out response.
func fetchFanout(t *testing.T, base, query string) *store.FanoutResponse {
	t.Helper()
	resp, err := http.Get(base + "/query?q=" + url.QueryEscape(query))
	if err != nil {
		t.Fatalf("GET %s: %v", base, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s query %q: %s: %s", base, query, resp.Status, bytes.TrimSpace(body))
	}
	var fr store.FanoutResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatalf("decoding fan-out: %v", err)
	}
	return &fr
}

// normalizeFanout zeroes the timing fields (the only legitimately
// nondeterministic bytes) so responses can be compared byte for byte.
func normalizeFanout(fr *store.FanoutResponse) {
	fr.WallNanos = 0
	fr.Workers = 0
	fr.Trace = nil
	if fr.Docs == nil {
		fr.Docs = []store.QueryResponse{}
	}
	for i := range fr.Docs {
		fr.Docs[i].PrepNanos = 0
		fr.Docs[i].EvalNanos = 0
		fr.Docs[i].Trace = nil
		if fr.Docs[i].Paths == nil {
			fr.Docs[i].Paths = []string{}
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestClusterGoldenEqualsSingleNode is the acceptance gate: a 3-node
// RF=2 cluster answers every corpus query byte-identically (modulo
// timing fields) to a single node holding the whole catalog — first
// with every node up, then with one replica killed outright.
func TestClusterGoldenEqualsSingleNode(t *testing.T) {
	docs := smallCorpora(t)

	// The single-node reference holds every document.
	refDir := t.TempDir()
	for name, doc := range docs {
		if err := os.WriteFile(filepath.Join(refDir, name+store.Ext), encodeArchive(t, doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	refSt, err := store.Open(refDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer refSt.Close()
	refSrv := httptest.NewServer(store.NewHandler(refSt, store.ServerOptions{}))
	defer refSrv.Close()

	nodes := startCluster(t, 3, 2, docs)

	var queries []string
	for _, c := range corpus.Catalog() {
		for _, q := range c.Queries {
			queries = append(queries, q)
		}
	}

	runAll := func(tag string) (pruned, direct int) {
		t.Helper()
		for _, q := range queries {
			want := fetchFanout(t, refSrv.URL, q)
			got := fetchFanout(t, nodes[0].url, q)
			if len(got.Failed) != 0 {
				t.Errorf("%s: query %q degraded: %+v", tag, q, got.Failed)
			}
			normalizeFanout(want)
			normalizeFanout(got)
			wb, gb := mustJSON(t, want), mustJSON(t, got)
			if !bytes.Equal(wb, gb) {
				t.Errorf("%s: query %q diverged\n single: %s\ncluster: %s", tag, q, wb, gb)
			}
			pruned += got.Pruned
			direct += got.Direct
		}
		return pruned, direct
	}

	pruned, direct := runAll("full cluster")
	if pruned == 0 {
		t.Errorf("no document was synopsis-pruned across %d clustered queries", len(queries))
	}
	t.Logf("full cluster: %d pruned, %d direct across %d queries", pruned, direct, len(queries))

	// Kill one replica outright — no graceful shutdown — and wait for
	// the survivors to notice. RF=2 means every document still has a
	// live owner, so the answers must not change.
	victim := nodes[2]
	victim.srv.CloseClientConnections()
	victim.srv.Close()
	waitFor(t, "victim marked down", func() bool {
		return !nodes[0].node.Membership().Up(victim.url) &&
			!nodes[1].node.Membership().Up(victim.url)
	})
	runAll("one replica down")
}

// TestReplicationShipsPublishedDocs pins the ingest→replica pipeline: a
// document published on one node lands on every ring owner, the pending
// queue drains to zero, and a published tombstone erases the replicas.
func TestReplicationShipsPublishedDocs(t *testing.T) {
	nodes := startCluster(t, 3, 2, nil)
	byURL := make(map[string]*testNode)
	for _, tn := range nodes {
		byURL[tn.url] = tn
	}

	c := corpus.Catalog()[0]
	raw := encodeArchive(t, c.Generate(3, 7))
	const name = "published-doc"
	if err := nodes[0].st.AcceptReplica(name, raw, nil); err != nil {
		t.Fatalf("landing the doc locally: %v", err)
	}
	nodes[0].node.Published(name, false)

	owners := nodes[0].node.Ring().Owners(name, 2)
	for _, owner := range owners {
		if owner == nodes[0].url {
			continue
		}
		tn := byURL[owner]
		waitFor(t, "replica on "+owner, func() bool { return tn.st.Has(name) })
	}
	waitFor(t, "replication queue drain", func() bool { return nodes[0].node.Lag() == 0 })

	// Tombstone: the published erase reaches the same owners.
	nodes[0].node.Published(name, true)
	for _, owner := range owners {
		if owner == nodes[0].url {
			continue
		}
		tn := byURL[owner]
		waitFor(t, "replica erased on "+owner, func() bool { return !tn.st.Has(name) })
	}
}

// TestReplicationRetriesThroughDownPeer pins the WAL + retry contract:
// a transfer owed to a dead peer stays pending (counted as lag) and is
// delivered when the peer comes back.
func TestReplicationRetriesThroughDownPeer(t *testing.T) {
	nodes := startCluster(t, 3, 3, nil) // RF=3: every node owns every doc
	victim := nodes[1]

	// Take the victim's HTTP face away (the process is "partitioned").
	victim.swap.set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "partitioned", http.StatusBadGateway)
	}))
	waitFor(t, "victim probed down", func() bool {
		return !nodes[0].node.Membership().Up(victim.url)
	})

	c := corpus.Catalog()[0]
	raw := encodeArchive(t, c.Generate(3, 7))
	const name = "delayed-doc"
	if err := nodes[0].st.AcceptReplica(name, raw, nil); err != nil {
		t.Fatal(err)
	}
	nodes[0].node.Published(name, false)

	// The live peer gets its copy; the dead one stays owed.
	waitFor(t, "replica on live peer", func() bool { return nodes[2].st.Has(name) })
	waitFor(t, "lag counts the dead peer", func() bool { return nodes[0].node.Lag() == 1 })
	if victim.st.Has(name) {
		t.Fatalf("partitioned peer received the replica")
	}

	// Heal the partition: the up-transition hook must deliver the
	// pending transfer without a new publish.
	victim.swap.set(victim.handler)
	waitFor(t, "victim probed up", func() bool {
		return nodes[0].node.Membership().Up(victim.url)
	})
	waitFor(t, "pending transfer delivered", func() bool { return victim.st.Has(name) })
	waitFor(t, "lag drains", func() bool { return nodes[0].node.Lag() == 0 })
}

// TestScatterDegradesShedAndTimeout is the fan-out error-propagation
// regression test (the cluster face of the PR 9 degraded-serving
// contract): a peer answering 429 becomes per-document error entries
// with the Retry-After hint preserved and stays routable; a peer
// answering 504 becomes per-document timeout entries and is marked
// suspect. The request as a whole still succeeds with the local
// documents answered.
func TestScatterDegradesShedAndTimeout(t *testing.T) {
	// One real node plus two scripted peers.
	fake := func(docName string, scatter http.HandlerFunc) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, `{"status":"ok"}`)
		})
		mux.HandleFunc("/cluster/docs", func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(DocsList{Names: []string{docName}})
		})
		mux.HandleFunc("/cluster/query", scatter)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv
	}
	shedSrv := fake("shed-doc", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"at capacity"}`, http.StatusTooManyRequests)
	})
	slowSrv := fake("slow-doc", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"deadline exceeded"}`, http.StatusGatewayTimeout)
	})

	c := corpus.Catalog()[0]
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "local-doc"+store.Ext),
		encodeArchive(t, c.Generate(3, 7)), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	swap := &swapHandler{}
	srv := httptest.NewServer(swap)
	defer srv.Close()
	n, err := New(st, Config{
		Self:              srv.URL,
		Peers:             []string{srv.URL, shedSrv.URL, slowSrv.URL},
		ReplicationFactor: 2,
		ProbeInterval:     25 * time.Millisecond,
		ScatterTimeout:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	swap.set(n.Handler(store.NewHandler(st, store.ServerOptions{}), 100))
	n.Start()
	defer n.Stop()

	waitFor(t, "fakes probed up with catalogs", func() bool {
		mem := n.Membership()
		return mem.Up(shedSrv.URL) && mem.Up(slowSrv.URL) &&
			len(mem.Names(shedSrv.URL)) == 1 && len(mem.Names(slowSrv.URL)) == 1
	})

	resp := fetchFanout(t, srv.URL, c.Queries[1])

	// The local document answered.
	if len(resp.Docs) != 1 || resp.Docs[0].Doc != "local-doc" {
		t.Fatalf("local docs = %+v, want just local-doc", resp.Docs)
	}
	// Both failed peers degraded into per-document entries.
	failed := make(map[string]store.FanoutError)
	for _, fe := range resp.Failed {
		failed[fe.Doc] = fe
	}
	shed, ok := failed["shed-doc"]
	if !ok {
		t.Fatalf("no error entry for the shed peer's doc: %+v", resp.Failed)
	}
	if shed.RetryAfter != "7" {
		t.Errorf("shed entry lost the Retry-After hint: %+v", shed)
	}
	if !strings.Contains(shed.Error, "429") {
		t.Errorf("shed entry error %q does not mention the shed", shed.Error)
	}
	slow, ok := failed["slow-doc"]
	if !ok {
		t.Fatalf("no error entry for the timed-out peer's doc: %+v", resp.Failed)
	}
	if !strings.Contains(slow.Error, "timed out") {
		t.Errorf("timeout entry error %q does not say timed out", slow.Error)
	}
	if shed.RetryAfter == slow.RetryAfter {
		t.Errorf("timeout entry must not carry a Retry-After hint: %+v", slow)
	}

	// Health verdicts: a shedding peer answered (still routable), a
	// timing-out peer is suspect.
	if !n.Membership().Up(shedSrv.URL) {
		t.Errorf("shed peer was marked down; 429 means alive")
	}
	if n.Membership().Up(slowSrv.URL) {
		t.Errorf("timed-out peer still routable; 504 must mark it suspect")
	}
}

// TestScatterDropsInvalidPeerDocNames pins the router against a buggy
// or version-skewed peer: a scatter answer naming a document no catalog
// could hold (Ring.Owners panics on unvalidated names) is dropped
// per-document — the valid rest of the answer and the request itself
// still succeed.
func TestScatterDropsInvalidPeerDocNames(t *testing.T) {
	c := corpus.Catalog()[0]
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/cluster/docs", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(DocsList{Names: []string{"peer-doc"}})
	})
	mux.HandleFunc("/cluster/query", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(store.FanoutResponse{Docs: []store.QueryResponse{
			{Doc: "../escape", Paths: []string{}},
			{Doc: "peer-doc", Paths: []string{}},
		}})
	})
	buggy := httptest.NewServer(mux)
	defer buggy.Close()

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "local-doc"+store.Ext),
		encodeArchive(t, c.Generate(3, 7)), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	swap := &swapHandler{}
	srv := httptest.NewServer(swap)
	defer srv.Close()
	n, err := New(st, Config{
		Self:              srv.URL,
		Peers:             []string{srv.URL, buggy.URL},
		ReplicationFactor: 2,
		ProbeInterval:     25 * time.Millisecond,
		ScatterTimeout:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	swap.set(n.Handler(store.NewHandler(st, store.ServerOptions{}), 100))
	n.Start()
	defer n.Stop()
	waitFor(t, "buggy peer probed up", func() bool { return n.Membership().Up(buggy.URL) })

	resp := fetchFanout(t, srv.URL, c.Queries[1])
	got := make(map[string]bool, len(resp.Docs))
	for _, qr := range resp.Docs {
		got[qr.Doc] = true
	}
	if got["../escape"] {
		t.Errorf("invalid peer doc name survived the merge: %+v", resp.Docs)
	}
	if !got["local-doc"] || !got["peer-doc"] {
		t.Errorf("valid documents missing from the merged answer: %+v", resp.Docs)
	}
}

// TestSingleDocForwarding pins the one-document path: a node that does
// not hold the document forwards the query once to a live owner, and
// the loop-guard header stops a second hop.
func TestSingleDocForwarding(t *testing.T) {
	docs := smallCorpora(t)
	nodes := startCluster(t, 3, 1, docs) // RF=1: exactly one owner per doc

	// Find a document whose owner is NOT nodes[0], so the query must
	// forward.
	ring := nodes[0].node.Ring()
	var name, owner string
	for dn := range docs {
		if o := ring.Owners(dn, 1)[0]; o != nodes[0].url {
			name, owner = dn, o
			break
		}
	}
	if name == "" {
		t.Fatalf("every document landed on node 0; ring is broken")
	}
	if nodes[0].st.Has(name) {
		t.Fatalf("node 0 unexpectedly holds %s", name)
	}

	var q string
	for _, c := range corpus.Catalog() {
		if c.Name == name {
			q = c.Queries[1]
		}
	}
	resp, err := http.Get(nodes[0].url + "/query?doc=" + url.QueryEscape(name) + "&q=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded query: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var qr store.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("decoding forwarded response: %v", err)
	}
	if qr.Doc != name || qr.Matches == 0 {
		t.Fatalf("forwarded answer from owner %s = doc %q matches %d, want %q with matches", owner, qr.Doc, qr.Matches, name)
	}
}
