package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/store"
	"repro/internal/xpath"
)

// forwardHeader is the loop guard on single-document forwards: a
// request carrying it is answered locally no matter what, so two nodes
// with stale rings can never bounce a request between each other.
const forwardHeader = "X-Cluster-Forwarded"

// Handler wraps the store's HTTP handler with the cluster faces:
//
//	GET  /query?q=...            clustered scatter-gather fan-out
//	GET  /query?doc=NAME&q=...   answered locally, or forwarded once to
//	                             a live owner of the document
//	POST /cluster/query          peer scatter endpoint (signature-first)
//	GET  /cluster/docs           this node's catalog names
//	PUT  /cluster/replicate      land a replica payload (CRC-verified)
//	DELETE /cluster/replicate    erase a replicated document
//	GET  /cluster/ring           this node's ring description
//	POST /cluster/ring           adopt a superseding ring
//	GET  /cluster/peers          membership and replication state
//
// Everything else falls through to the store handler, including
// /healthz and /readyz. maxPaths mirrors ServerOptions.MaxPaths for the
// clustered fan-out's shared budget (<= 0 selects 100).
func (n *Node) Handler(inner http.Handler, maxPaths int) http.Handler {
	if maxPaths <= 0 {
		maxPaths = 100
	}
	h := &clusterHandler{n: n, inner: inner, maxPaths: maxPaths}
	if n.cfg.MaxConcurrentQueries > 0 {
		h.sem = make(chan struct{}, n.cfg.MaxConcurrentQueries)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/query", h.peerQuery)
	mux.HandleFunc("/cluster/docs", h.docs)
	mux.HandleFunc("/cluster/replicate", h.replicate)
	mux.HandleFunc("/cluster/ring", h.ring)
	mux.HandleFunc("/cluster/peers", h.peers)
	mux.HandleFunc("/query", h.query)
	mux.Handle("/", inner)
	return mux
}

type clusterHandler struct {
	n        *Node
	inner    http.Handler
	maxPaths int
	sem      chan struct{} // peer-scatter admission gate; nil = unbounded
}

// query intercepts GET /query: catalog-wide queries scatter across the
// cluster, single-document queries are answered locally when possible
// and forwarded once to a live owner otherwise.
func (h *clusterHandler) query(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		h.inner.ServeHTTP(w, r)
		return
	}
	if doc := r.URL.Query().Get("doc"); doc != "" {
		h.singleDoc(w, r, doc)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeClusterError(w, http.StatusBadRequest, errors.New("missing q parameter"))
		return
	}
	max := h.maxPaths
	if m := r.URL.Query().Get("max"); m != "" {
		v, err := strconv.Atoi(m)
		if err != nil || v < 0 {
			writeClusterError(w, http.StatusBadRequest, fmt.Errorf("bad max parameter %q", m))
			return
		}
		if v < max {
			max = v
		}
	}
	resp, err := h.n.rt.QueryAll(r.Context(), q, max)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		writeClusterError(w, status, err)
		return
	}
	writeClusterJSON(w, http.StatusOK, resp)
}

// singleDoc answers a one-document query: locally when the catalog has
// it, else forwarded (once — the loop-guard header ends the chain) to
// the first live owner under the ring.
func (h *clusterHandler) singleDoc(w http.ResponseWriter, r *http.Request, doc string) {
	if h.n.st.Has(doc) || r.Header.Get(forwardHeader) != "" {
		h.inner.ServeHTTP(w, r)
		return
	}
	if store.ValidateDocName(doc) != nil {
		h.inner.ServeHTTP(w, r) // let the store answer the 400
		return
	}
	for _, owner := range h.n.Ring().Owners(doc, h.n.cfg.ReplicationFactor) {
		if owner == h.n.cfg.Self || !h.n.mem.Up(owner) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
			owner+r.URL.RequestURI(), nil)
		if err != nil {
			break
		}
		req.Header.Set(forwardHeader, "1")
		resp, err := h.n.cfg.Client.Do(req)
		if err != nil {
			continue // next owner; the prober will downgrade this one
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	// No live remote owner: answer locally (a 404, typically).
	h.inner.ServeHTTP(w, r)
}

// peerQuery is the scatter endpoint peers call: the query signature is
// checked against the local synopsis index *first*, and when it alone
// proves every catalogued document empty the node answers without
// compiling the query — the signature-first fast path. Admission and
// timeout mirror the single-node /query contract, so the router's
// degradation logic sees the same 429/504 surface.
func (h *clusterHandler) peerQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeClusterError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if h.sem != nil {
		select {
		case h.sem <- struct{}{}:
			defer func() { <-h.sem }()
		default:
			w.Header().Set("Retry-After", "1")
			writeClusterError(w, http.StatusTooManyRequests,
				fmt.Errorf("node at max concurrent scatter queries (%d)", h.n.cfg.MaxConcurrentQueries))
			return
		}
	}
	var pq PeerQuery
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&pq); err != nil {
		writeClusterError(w, http.StatusBadRequest, fmt.Errorf("decoding query: %v", err))
		return
	}
	if pq.Query == "" {
		writeClusterError(w, http.StatusBadRequest, errors.New("missing query"))
		return
	}
	if pq.Max <= 0 {
		pq.Max = h.maxPaths
	}

	if sig := xpath.SigFromWire(pq.Sig); sig.Prunable() {
		names, prunable := h.n.st.SignaturePrune(sig)
		all := prunable != nil
		for _, p := range prunable {
			if !p {
				all = false
				break
			}
		}
		if all {
			resp := &store.FanoutResponse{Query: pq.Query, Docs: make([]store.QueryResponse, 0, len(names))}
			for _, name := range names {
				resp.Docs = append(resp.Docs, store.QueryResponse{
					Doc: name, Query: pq.Query, Paths: []string{}, Pruned: true,
				})
				resp.Pruned++
				h.n.m.sigPruned.Inc()
			}
			resp.Workers = h.n.st.Workers()
			writeClusterJSON(w, http.StatusOK, resp)
			return
		}
	}

	ctx := r.Context()
	if h.n.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, h.n.cfg.QueryTimeout)
		defer cancel()
	}
	resp, err := h.n.st.FanoutLocal(ctx, pq.Query, pq.Max)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		writeClusterError(w, status, err)
		return
	}
	writeClusterJSON(w, http.StatusOK, resp)
}

// DocsList is the GET /cluster/docs body: the node's catalog names.
type DocsList struct {
	Names []string `json:"names"`
}

func (h *clusterHandler) docs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeClusterError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	names := h.n.st.Names()
	if names == nil {
		names = []string{}
	}
	writeClusterJSON(w, http.StatusOK, DocsList{Names: names})
}

// replicate lands (PUT) or erases (DELETE) a replica shipped by a peer.
func (h *clusterHandler) replicate(w http.ResponseWriter, r *http.Request) {
	doc := r.URL.Query().Get("doc")
	if doc == "" {
		writeClusterError(w, http.StatusBadRequest, errors.New("missing doc parameter"))
		return
	}
	if err := store.ValidateDocName(doc); err != nil {
		writeClusterError(w, http.StatusBadRequest, err)
		return
	}
	switch r.Method {
	case http.MethodPut:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<30))
		if err != nil {
			writeClusterError(w, http.StatusBadRequest, fmt.Errorf("reading payload: %v", err))
			return
		}
		archive, sidecar, err := parseReplicaFrame(body, r.Header.Get(crcHeader))
		if err != nil {
			writeClusterError(w, http.StatusBadRequest, err)
			return
		}
		if err := h.n.st.AcceptReplica(doc, archive, sidecar); err != nil {
			writeClusterError(w, http.StatusInternalServerError, err)
			return
		}
		h.n.m.replReceived.Inc()
		writeClusterJSON(w, http.StatusOK, map[string]string{"doc": doc, "status": "replicated"})
	case http.MethodDelete:
		if !h.n.st.Has(doc) {
			// Idempotent: the replica never landed or is already gone.
			writeClusterJSON(w, http.StatusOK, map[string]string{"doc": doc, "status": "absent"})
			return
		}
		if err := h.n.st.Erase(doc); err != nil {
			writeClusterError(w, http.StatusInternalServerError, err)
			return
		}
		writeClusterJSON(w, http.StatusOK, map[string]string{"doc": doc, "status": "erased"})
	default:
		writeClusterError(w, http.StatusMethodNotAllowed, errors.New("PUT or DELETE only"))
	}
}

// ring serves (GET) and adopts (POST) ring descriptions.
func (h *clusterHandler) ring(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeClusterJSON(w, http.StatusOK, h.n.Ring().Desc())
	case http.MethodPost:
		var d Desc
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&d); err != nil {
			writeClusterError(w, http.StatusBadRequest, fmt.Errorf("decoding ring: %v", err))
			return
		}
		adopted, err := h.n.AdoptDesc(d)
		if err != nil {
			writeClusterError(w, http.StatusBadRequest, err)
			return
		}
		status := "kept"
		if adopted {
			status = "adopted"
		}
		writeClusterJSON(w, http.StatusOK, map[string]any{
			"status": status, "ring": h.n.Ring().Desc(),
		})
	default:
		writeClusterError(w, http.StatusMethodNotAllowed, errors.New("GET or POST only"))
	}
}

// PeersResponse is the GET /cluster/peers body.
type PeersResponse struct {
	Self            string      `json:"self"`
	Ring            Desc        `json:"ring"`
	Peers           []PeerState `json:"peers"`
	ReplicationLag  int         `json:"replication_lag_docs"`
	ReplicationRF   int         `json:"replication_factor"`
	ProbeIntervalMS int64       `json:"probe_interval_ms"`
}

func (h *clusterHandler) peers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeClusterError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	interval := h.n.cfg.ProbeInterval
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	writeClusterJSON(w, http.StatusOK, PeersResponse{
		Self:            h.n.cfg.Self,
		Ring:            h.n.Ring().Desc(),
		Peers:           h.n.mem.States(),
		ReplicationLag:  h.n.repl.Lag(),
		ReplicationRF:   h.n.cfg.ReplicationFactor,
		ProbeIntervalMS: int64(interval / time.Millisecond),
	})
}

func writeClusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	if status != http.StatusOK {
		w.WriteHeader(status)
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeClusterError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
