package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"testing"
)

func frameCRC(body []byte) string {
	return fmt.Sprintf("%08x", crc32.Checksum(body, pendingCRC))
}

// TestParseReplicaFrameRoundTrip pins the happy path: what frameReplica
// encodes, parseReplicaFrame decodes, with an absent sidecar mapped to
// nil.
func TestParseReplicaFrameRoundTrip(t *testing.T) {
	body := frameReplica([]byte("archive-bytes"), []byte("sidecar"))
	archive, sidecar, err := parseReplicaFrame(body, frameCRC(body))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !bytes.Equal(archive, []byte("archive-bytes")) || !bytes.Equal(sidecar, []byte("sidecar")) {
		t.Fatalf("round trip = %q / %q", archive, sidecar)
	}
	body = frameReplica([]byte("a"), nil)
	if _, sidecar, err = parseReplicaFrame(body, frameCRC(body)); err != nil || sidecar != nil {
		t.Fatalf("empty sidecar: err=%v sidecar=%v, want nil/nil", err, sidecar)
	}
}

// TestParseReplicaFrameRejectsCraftedLengths pins the bounds checks
// against 32-bit overflow: an archive length near MaxUint32 used to
// wrap 4+alen+4 to a small number, pass the old check, and panic the
// slice expression. Every malformed frame must come back as an error.
func TestParseReplicaFrameRejectsCraftedLengths(t *testing.T) {
	overflow := make([]byte, 8)
	binary.BigEndian.PutUint32(overflow, 0xFFFFFFFC) // 4+alen+4 wraps to 4 in uint32
	past := make([]byte, 12)
	binary.BigEndian.PutUint32(past, 16) // claims more archive than the body holds
	trailing := append(frameReplica([]byte("a"), []byte("s")), 'x')
	cases := map[string][]byte{
		"overflowing archive length": overflow,
		"short header":               {0, 0},
		"archive length past body":   past,
		"trailing bytes":             trailing,
	}
	for name, body := range cases {
		if _, _, err := parseReplicaFrame(body, frameCRC(body)); err == nil {
			t.Errorf("%s: frame accepted, want error", name)
		}
	}
	good := frameReplica([]byte("a"), nil)
	if _, _, err := parseReplicaFrame(good, "00000000"); err == nil {
		t.Error("CRC mismatch accepted, want error")
	}
}
