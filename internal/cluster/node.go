package cluster

import (
	"errors"
	"fmt"
	"log"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/store"
)

// DefaultReplicationFactor keeps two copies of every document.
const DefaultReplicationFactor = 2

// Config assembles one cluster node.
type Config struct {
	// Self is this node's advertise URL (how peers reach it), e.g.
	// "http://10.0.0.1:8080". Required.
	Self string
	// Peers lists every cluster member's advertise URL. Self is added
	// if absent; order is irrelevant (placement sorts).
	Peers []string
	// ReplicationFactor is how many nodes own each document. <= 0
	// selects DefaultReplicationFactor; clamped to the cluster size.
	ReplicationFactor int
	// VNodes is the virtual-node count per node. <= 0 selects
	// DefaultVNodes.
	VNodes int
	// ProbeInterval is the peer health-probe cadence. <= 0 selects
	// DefaultProbeInterval.
	ProbeInterval time.Duration
	// ScatterTimeout bounds one clustered fan-out. <= 0 leaves it to
	// the caller's context.
	ScatterTimeout time.Duration
	// MaxConcurrentQueries caps in-flight peer-scatter evaluations on
	// this node (the /cluster/query admission gate). <= 0 disables it.
	MaxConcurrentQueries int
	// QueryTimeout bounds one peer-scatter evaluation; past it the
	// peer answers 504 and the router degrades this node. <= 0 disables.
	QueryTimeout time.Duration
	// Client issues all peer HTTP requests. Nil selects a dedicated
	// client with sane timeouts.
	Client *http.Client
	// FS routes the pending-replication WAL's file I/O. Nil selects the
	// store's FS, so a fault injector covers the cluster queue too.
	FS fault.FS
}

// Node is one member of the cluster: it owns the ring, the health
// tracker, the replicator and the router, and serves the peer protocol
// next to the store's own HTTP API.
type Node struct {
	cfg  Config
	st   *store.Store
	m    *clusterMetrics
	mem  *Membership
	repl *Replicator
	rt   *Router

	ringMu sync.Mutex
	ring   *Ring
}

// New assembles a node around an open store. Start launches the
// background loops; Handler wraps the store's HTTP handler with the
// peer protocol and the clustered query path.
func New(st *store.Store, cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Config.Self is required")
	}
	peers := append([]string(nil), cfg.Peers...)
	found := false
	for _, p := range peers {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		peers = append(peers, cfg.Self)
	}
	if len(peers) < 2 {
		return nil, errors.New("cluster: need at least one peer besides self")
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = DefaultReplicationFactor
	}
	if cfg.ReplicationFactor > len(peers) {
		cfg.ReplicationFactor = len(peers)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 60 * time.Second}
	}
	if cfg.FS == nil {
		cfg.FS = st.FS()
	}

	n := &Node{cfg: cfg, st: st, m: newClusterMetrics(st.Metrics())}
	n.ring = Build(peers, cfg.VNodes)
	n.mem = newMembership(cfg.Self, peers, cfg.Client, cfg.ProbeInterval, n.m)
	repl, err := newReplicator(cfg.Self, st, cfg.FS,
		filepath.Join(st.Dir(), "cluster"), cfg.Client, n.Ring, cfg.ReplicationFactor, n.m)
	if err != nil {
		return nil, err
	}
	n.repl = repl
	n.rt = &Router{
		self:    cfg.Self,
		st:      st,
		mem:     n.mem,
		client:  cfg.Client,
		ringFn:  n.Ring,
		rf:      cfg.ReplicationFactor,
		timeout: cfg.ScatterTimeout,
		m:       n.m,
	}
	n.mem.onUp = repl.PeerUp
	n.mem.onRing = func(d Desc) { n.adopt(FromDesc(d), "exchange") }
	repl.setUpFn(n.mem.Up)

	reg := st.Metrics()
	reg.Gauge("xc_cluster_peers_up",
		"Cluster peers currently probed healthy (excluding this node).",
		func() float64 {
			up := 0
			for _, ps := range n.mem.States() {
				if ps.Up {
					up++
				}
			}
			return float64(up)
		})
	reg.Gauge("xc_cluster_replication_lag_docs",
		"Replica transfers owed to peers (pending-replication queue depth).",
		func() float64 { return float64(n.repl.Lag()) })
	return n, nil
}

// Start launches the health prober and the replication sender.
func (n *Node) Start() {
	n.mem.Start()
	n.repl.Start()
}

// Stop ends the background loops; pending transfers stay durable in the
// WAL for the next start.
func (n *Node) Stop() {
	n.mem.Stop()
	n.repl.Stop()
}

// Ring returns the node's current ring.
func (n *Node) Ring() *Ring {
	n.ringMu.Lock()
	defer n.ringMu.Unlock()
	return n.ring
}

// Membership exposes the health tracker (tests and the peers endpoint).
func (n *Node) Membership() *Membership { return n.mem }

// Router exposes the scatter-gather query path.
func (n *Node) Router() *Router { return n.rt }

// Lag is the pending-replication queue depth.
func (n *Node) Lag() int { return n.repl.Lag() }

// Published is the ingest hook (wire it to ingest.Options.Published):
// the compactor just made name durable or erased it; owed replica
// transfers are enqueued durably and sent in the background.
func (n *Node) Published(name string, tomb bool) { n.repl.Published(name, tomb) }

// adopt installs r if it supersedes the current ring. It returns
// whether the ring changed; src names the origin for the log line.
func (n *Node) adopt(r *Ring, src string) bool {
	n.ringMu.Lock()
	cur := n.ring
	if !r.Supersedes(cur) {
		n.ringMu.Unlock()
		return false
	}
	n.ring = r
	n.ringMu.Unlock()
	// Keep the health tracker in step with the ring: a node that just
	// joined must be probed (and routed to, and owed replicas) and one
	// that left must stop being attributed documents.
	n.mem.SetPeers(r.Nodes())
	n.m.ringAdopted.Inc()
	log.Printf("cluster: adopted ring epoch=%d version=%016x nodes=%d (via %s)",
		r.Epoch(), r.Version(), r.Len(), src)
	return true
}

// AdoptDesc validates and adopts a ring description pushed by an
// operator or a peer (POST /cluster/ring).
func (n *Node) AdoptDesc(d Desc) (bool, error) {
	if len(d.Nodes) == 0 {
		return false, errors.New("cluster: ring with no nodes")
	}
	r := FromDesc(d)
	if !r.Contains(n.cfg.Self) {
		return false, fmt.Errorf("cluster: ring does not contain this node (%s)", n.cfg.Self)
	}
	return n.adopt(r, "push"), nil
}
