package baseline_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/xpath"
)

const doc = `<bib>
<book><title>t</title><author>Abiteboul</author><author>Hull</author></book>
<paper><title>t</title><author>Codd</author></paper>
</bib>`

func eval(t *testing.T, query string, patterns []string) int {
	t.Helper()
	prog, err := xpath.CompileQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := baseline.Build([]byte(doc), patterns)
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.Eval(tr, prog)
	if err != nil {
		t.Fatal(err)
	}
	return baseline.Count(res)
}

func TestTreeShape(t *testing.T) {
	tr, err := baseline.Build([]byte(doc), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 8 elements + virtual document node.
	if tr.NumNodes() != 9 {
		t.Fatalf("nodes = %d, want 9", tr.NumNodes())
	}
	if tr.Tag[0] != baseline.DocTag || tr.Parent[0] != -1 {
		t.Fatal("node 0 must be the document node")
	}
	if tr.Tag[1] != "bib" || tr.Parent[1] != 0 {
		t.Fatalf("node 1 = %s parent %d", tr.Tag[1], tr.Parent[1])
	}
}

func TestAxesOnTree(t *testing.T) {
	cases := []struct {
		query string
		want  int
	}{
		{`/bib`, 1},
		{`//author`, 3},
		{`//book/author`, 2},
		{`//author/parent::*`, 2},
		{`//author/ancestor::*`, 4}, // book, paper, bib, doc
		{`//title/following-sibling::author`, 3},
		{`//author/preceding-sibling::title`, 2},
		{`//book/following::*`, 3},  // paper, title, author
		{`//paper/preceding::*`, 4}, // book and its three children
		{`//book/descendant-or-self::*`, 4},
		{`/self::*`, 1},
	}
	for _, c := range cases {
		if got := eval(t, c.query, nil); got != c.want {
			t.Errorf("%s = %d, want %d", c.query, got, c.want)
		}
	}
}

func TestStringConditions(t *testing.T) {
	prog, err := xpath.CompileQuery(`//paper[author["Codd"]]`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := baseline.Build([]byte(doc), prog.Strings)
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.Eval(tr, prog)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Count(res) != 1 {
		t.Fatalf("count = %d, want 1", baseline.Count(res))
	}
}

func TestMalformedDoc(t *testing.T) {
	if _, err := baseline.Build([]byte(`<a><b></a>`), nil); err == nil {
		t.Fatal("expected parse error")
	}
}
