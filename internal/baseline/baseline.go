// Package baseline is an independent Core XPath evaluator over the plain,
// uncompressed document tree — the O(|Q| * |T|) main-memory evaluation the
// paper compares against ("our algorithms are competitive even when applied
// to uncompressed data", Section 6).
//
// It deliberately shares no evaluation code with internal/algebra: axes are
// computed directly on a pointer-style tree with boolean node sets. That
// makes it both the performance baseline for the benchmarks and the oracle
// for differential tests of the compressed-instance engine.
package baseline

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/saxml"
	"repro/internal/strmatch"
	"repro/internal/xpath"
)

// DocTag is the pseudo-tag of node 0, the virtual document node above the
// root element (mirroring the skeleton package's virtual document vertex).
const DocTag = "#doc"

// Tree is an uncompressed document skeleton in document (preorder) order.
// Node 0 is always the virtual document node.
type Tree struct {
	Parent   []int32   // Parent[i] = parent of node i; -1 for the root
	Children [][]int32 // Children[i] = child nodes in document order
	Tag      []string  // element tag per node
	// strMatch[p][i] reports that node i's string value contains
	// pattern p (patterns as passed to Build).
	strMatch [][]bool
	patterns map[string]int
}

// NumNodes returns |T|.
func (t *Tree) NumNodes() int { return len(t.Tag) }

// Build parses doc into a Tree, recording string-containment matches for
// the given patterns.
func Build(doc []byte, patterns []string) (*Tree, error) {
	t := &Tree{patterns: make(map[string]int, len(patterns))}
	for i, p := range patterns {
		t.patterns[p] = i
	}
	b := &builder{tree: t}
	if len(patterns) > 0 {
		b.matcher = strmatch.New(patterns)
		t.strMatch = make([][]bool, len(patterns))
	}
	// Node 0: the virtual document node.
	t.Tag = append(t.Tag, DocTag)
	t.Children = append(t.Children, nil)
	t.Parent = append(t.Parent, -1)
	b.stack = append(b.stack, 0)
	b.starts = append(b.starts, 0)
	for i := range t.strMatch {
		t.strMatch[i] = append(t.strMatch[i], false)
	}
	if err := saxml.Parse(doc, b); err != nil {
		return nil, err
	}
	for i := range t.strMatch {
		// Pad to final node count (marks were set during parsing).
		for len(t.strMatch[i]) < t.NumNodes() {
			t.strMatch[i] = append(t.strMatch[i], false)
		}
	}
	return t, nil
}

type builder struct {
	tree    *Tree
	stack   []int32
	starts  []int64 // text start offset per open element
	matcher *strmatch.Automaton
}

func (b *builder) StartElement(name string, _ []saxml.Attr) error {
	t := b.tree
	id := int32(len(t.Tag))
	t.Tag = append(t.Tag, name)
	t.Children = append(t.Children, nil)
	p := b.stack[len(b.stack)-1]
	t.Parent = append(t.Parent, p)
	t.Children[p] = append(t.Children[p], id)
	var off int64
	if b.matcher != nil {
		off = b.matcher.Offset()
	}
	b.stack = append(b.stack, id)
	b.starts = append(b.starts, off)
	for i := range t.strMatch {
		t.strMatch[i] = append(t.strMatch[i], false)
	}
	return nil
}

func (b *builder) EndElement(string) error {
	b.stack = b.stack[:len(b.stack)-1]
	b.starts = b.starts[:len(b.starts)-1]
	return nil
}

func (b *builder) Text(data []byte) error {
	if b.matcher == nil {
		return nil
	}
	b.matcher.Feed(data, func(m strmatch.Match) {
		marks := b.tree.strMatch[m.Pattern]
		for i := len(b.stack) - 1; i >= 0; i-- {
			if b.starts[i] > m.Start {
				continue
			}
			n := b.stack[i]
			if marks[n] {
				break
			}
			marks[n] = true
		}
	})
	return nil
}

// Eval runs a compiled program on the tree and returns the boolean result
// set over nodes in document order.
func Eval(t *Tree, prog *xpath.Program) ([]bool, error) {
	regs := make([][]bool, prog.NumTemp)
	for _, in := range prog.Instrs {
		var dst []bool
		switch in.Op {
		case xpath.OpLabel:
			dst = t.labelSet(in.Name)
		case xpath.OpAll:
			dst = make([]bool, t.NumNodes())
			for i := range dst {
				dst[i] = true
			}
		case xpath.OpRoot:
			dst = make([]bool, t.NumNodes())
			if len(dst) > 0 {
				dst[0] = true
			}
		case xpath.OpAxis:
			dst = t.axis(in.Axis, regs[in.A])
		case xpath.OpUnion:
			dst = combine(regs[in.A], regs[in.B], func(a, b bool) bool { return a || b })
		case xpath.OpIntersect:
			dst = combine(regs[in.A], regs[in.B], func(a, b bool) bool { return a && b })
		case xpath.OpDiff:
			dst = combine(regs[in.A], regs[in.B], func(a, b bool) bool { return a && !b })
		case xpath.OpComplement:
			dst = make([]bool, t.NumNodes())
			for i, v := range regs[in.A] {
				dst[i] = !v
			}
		case xpath.OpRootFilter:
			dst = make([]bool, t.NumNodes())
			if len(dst) > 0 && regs[in.A][0] {
				for i := range dst {
					dst[i] = true
				}
			}
		default:
			return nil, fmt.Errorf("baseline: unknown op %d", in.Op)
		}
		regs[in.Dst] = dst
	}
	return regs[prog.Result], nil
}

// Count returns the number of selected nodes in a result set.
func Count(set []bool) int {
	n := 0
	for _, v := range set {
		if v {
			n++
		}
	}
	return n
}

// labelSet resolves a "tag:..." or "str:..." schema name to its node set.
func (t *Tree) labelSet(name string) []bool {
	dst := make([]bool, t.NumNodes())
	const tagPrefix, strPrefix = "tag:", "str:"
	switch {
	case len(name) >= 4 && name[:4] == tagPrefix:
		tag := name[4:]
		for i, tg := range t.Tag {
			if tg == tag {
				dst[i] = true
			}
		}
	case len(name) >= 4 && name[:4] == strPrefix:
		if pi, ok := t.patterns[name[4:]]; ok {
			copy(dst, t.strMatch[pi])
		}
	}
	return dst
}

func combine(a, b []bool, f func(bool, bool) bool) []bool {
	dst := make([]bool, len(a))
	for i := range a {
		dst[i] = f(a[i], b[i])
	}
	return dst
}

func (t *Tree) axis(a algebra.Axis, src []bool) []bool {
	n := t.NumNodes()
	dst := make([]bool, n)
	switch a {
	case algebra.Self:
		copy(dst, src)
	case algebra.Child:
		// Selected iff parent in src. Document order: parents precede
		// children, one forward pass suffices.
		for i := 0; i < n; i++ {
			if p := t.Parent[i]; p >= 0 && src[p] {
				dst[i] = true
			}
		}
	case algebra.Parent:
		for i := 0; i < n; i++ {
			if src[i] {
				if p := t.Parent[i]; p >= 0 {
					dst[p] = true
				}
			}
		}
	case algebra.Descendant, algebra.DescendantOrSelf:
		// Selected iff a proper ancestor is in src (or self for -or-self).
		for i := 0; i < n; i++ {
			p := t.Parent[i]
			if p >= 0 && (src[p] || dst[p]) {
				dst[i] = true
			}
		}
		if a == algebra.DescendantOrSelf {
			for i := 0; i < n; i++ {
				if src[i] {
					dst[i] = true
				}
			}
		}
	case algebra.Ancestor, algebra.AncestorOrSelf:
		// Backward pass: children precede... children FOLLOW parents in
		// preorder, so iterate in reverse to see descendants first.
		for i := n - 1; i >= 0; i-- {
			if src[i] || dst[i] {
				if p := t.Parent[i]; p >= 0 {
					dst[p] = true
				}
			}
		}
		if a == algebra.AncestorOrSelf {
			for i := 0; i < n; i++ {
				if src[i] {
					dst[i] = true
				}
			}
		}
	case algebra.FollowingSibling:
		for i := 0; i < n; i++ {
			seen := false
			for _, c := range t.Children[i] {
				if seen {
					dst[c] = true
				}
				if src[c] {
					seen = true
				}
			}
		}
	case algebra.PrecedingSibling:
		for i := 0; i < n; i++ {
			seen := false
			kids := t.Children[i]
			for j := len(kids) - 1; j >= 0; j-- {
				c := kids[j]
				if seen {
					dst[c] = true
				}
				if src[c] {
					seen = true
				}
			}
		}
	case algebra.Following:
		return t.axis(algebra.DescendantOrSelf,
			t.axis(algebra.FollowingSibling,
				t.axis(algebra.AncestorOrSelf, src)))
	case algebra.Preceding:
		return t.axis(algebra.DescendantOrSelf,
			t.axis(algebra.PrecedingSibling,
				t.axis(algebra.AncestorOrSelf, src)))
	default:
		panic("baseline: unknown axis " + a.String())
	}
	return dst
}
