package synopsis

import (
	"sync"

	"repro/internal/label"
	"repro/internal/xpath"
)

// Dict is the catalog-wide label dictionary: a concurrency-safe interner
// mapping tag-label names to dense IDs shared by every synopsis in one
// Index. IDs are append-only and never reassigned, so a Synopsis built
// against an older, smaller dict stays valid as the dict grows.
type Dict struct {
	mu     sync.RWMutex
	schema *label.Schema
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{schema: label.NewSchema()} }

// Intern returns the ID for name, registering it if necessary.
func (d *Dict) Intern(name string) label.ID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.schema.Intern(name)
}

// internLocked is Intern for callers already holding d.mu (Build interns
// a whole document's labels under one lock round).
func (d *Dict) internLocked(name string) label.ID { return d.schema.Intern(name) }

// Lookup returns the ID for name, or label.Invalid if no indexed
// document ever contained it.
func (d *Dict) Lookup(name string) label.ID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.schema.Lookup(name)
}

// Len returns the number of interned labels.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.schema.Len()
}

// Name returns the name interned under id.
func (d *Dict) Name(id label.ID) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.schema.Name(id)
}

// Index is the catalog-level synopsis registry: document name to
// synopsis, over one shared Dict. Reads take a read lock only for the
// map lookup; synopses themselves are immutable. Writers (store open,
// compaction publish, tombstone removal) are rare and never block
// readers for longer than a map operation.
type Index struct {
	dict *Dict

	mu   sync.RWMutex
	syns map[string]*Synopsis
}

// NewIndex returns an empty index over a fresh dictionary.
func NewIndex() *Index {
	return &Index{dict: NewDict(), syns: make(map[string]*Synopsis)}
}

// Dict returns the index's shared label dictionary — synopses stored in
// this index must be built against it.
func (x *Index) Dict() *Dict { return x.dict }

// Put registers (or replaces) the synopsis for name. A nil synopsis
// removes the entry, so publishers can unconditionally sync.
func (x *Index) Put(name string, syn *Synopsis) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if syn == nil {
		delete(x.syns, name)
		return
	}
	x.syns[name] = syn
}

// Remove drops the synopsis for name, if any. Call whenever the document
// under that name changes or disappears: a missing synopsis means "scan",
// never a wrong answer.
func (x *Index) Remove(name string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	delete(x.syns, name)
}

// Get returns the synopsis for name, or nil.
func (x *Index) Get(name string) *Synopsis {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.syns[name]
}

// Len returns the number of indexed documents.
func (x *Index) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.syns)
}

// MemBytes estimates the index's in-memory footprint: every synopsis
// plus the dictionary strings.
func (x *Index) MemBytes() int64 {
	x.mu.RLock()
	var b int64
	for _, s := range x.syns {
		b += s.MemBytes()
	}
	x.mu.RUnlock()
	x.dict.mu.RLock()
	for _, name := range x.dict.schema.Names() {
		b += int64(len(name)) + 32
	}
	x.dict.mu.RUnlock()
	return b
}

// Resolve translates a query signature against the index's dictionary,
// or returns nil when the signature cannot prune.
func (x *Index) Resolve(sig *xpath.Signature) *Resolved {
	return Resolve(sig, x.dict)
}
