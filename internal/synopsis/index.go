package synopsis

import (
	"strings"
	"sync"

	"repro/internal/label"
	"repro/internal/xpath"
)

// Dict is the catalog-wide label dictionary: a concurrency-safe interner
// mapping tag-label names to dense IDs shared by every synopsis in one
// Index. IDs are append-only and never reassigned, so a Synopsis built
// against an older, smaller dict stays valid as the dict grows.
type Dict struct {
	mu     sync.RWMutex
	schema *label.Schema
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{schema: label.NewSchema()} }

// Intern returns the ID for name, registering it if necessary.
func (d *Dict) Intern(name string) label.ID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.schema.Intern(name)
}

// internLocked is Intern for callers already holding d.mu (Build interns
// a whole document's labels under one lock round).
func (d *Dict) internLocked(name string) label.ID { return d.schema.Intern(name) }

// Lookup returns the ID for name, or label.Invalid if no indexed
// document ever contained it.
func (d *Dict) Lookup(name string) label.ID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.schema.Lookup(name)
}

// Len returns the number of interned labels.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.schema.Len()
}

// Name returns the name interned under id.
func (d *Dict) Name(id label.ID) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.schema.Name(id)
}

// Index is the catalog-level synopsis registry: document name to
// synopsis, over one shared Dict. Reads take a read lock only for the
// map lookup; synopses themselves are immutable. Writers (store open,
// compaction publish, tombstone removal) are rare and never block
// readers for longer than a map operation.
//
// Alongside the per-document synopses the index maintains their
// aggregate statistics — catalog-wide tree size and per-label tree-node
// totals, updated incrementally on Put/Remove — which make it the
// plan.Estimator the cost-based planner orders steps by. A generation
// counter, bumped on every mutation, lets plan caches detect that
// estimates may have shifted.
type Index struct {
	dict *Dict

	mu        sync.RWMutex
	syns      map[string]*Synopsis
	totals    map[label.ID]uint64 // sum of per-document label tree counts
	treeTotal uint64              // sum of per-document tree sizes
	gen       uint64              // bumped on every Put/Remove
}

// NewIndex returns an empty index over a fresh dictionary.
func NewIndex() *Index {
	return &Index{
		dict:   NewDict(),
		syns:   make(map[string]*Synopsis),
		totals: make(map[label.ID]uint64),
	}
}

// Dict returns the index's shared label dictionary — synopses stored in
// this index must be built against it.
func (x *Index) Dict() *Dict { return x.dict }

// Put registers (or replaces) the synopsis for name. A nil synopsis
// removes the entry, so publishers can unconditionally sync.
func (x *Index) Put(name string, syn *Synopsis) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.gen++
	if old := x.syns[name]; old != nil {
		x.subtractLocked(old)
	}
	if syn == nil {
		delete(x.syns, name)
		return
	}
	x.syns[name] = syn
	x.treeTotal += syn.treeSize
	for id, c := range syn.counts {
		x.totals[id] += c
	}
}

// Remove drops the synopsis for name, if any. Call whenever the document
// under that name changes or disappears: a missing synopsis means "scan",
// never a wrong answer.
func (x *Index) Remove(name string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.gen++
	if old := x.syns[name]; old != nil {
		x.subtractLocked(old)
	}
	delete(x.syns, name)
}

// subtractLocked reverses a synopsis's contribution to the aggregates.
// Counts are exact per document, so add/subtract round-trips cleanly;
// saturated documents contribute their (lower-bound) saturated values
// symmetrically.
func (x *Index) subtractLocked(s *Synopsis) {
	x.treeTotal -= s.treeSize
	for id, c := range s.counts {
		if rest := x.totals[id] - c; rest != 0 {
			x.totals[id] = rest
		} else {
			delete(x.totals, id)
		}
	}
}

// Generation returns the mutation counter: any Put or Remove since a
// caller last observed it may have changed the aggregate estimates, so
// plans derived from them should be rebuilt.
func (x *Index) Generation() uint64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.gen
}

// LabelCount implements the planner's estimator contract: the
// catalog-wide number of tree nodes carrying the given (skeleton-form,
// "tag:"-prefixed) label. known=false means the index has no information
// about names of that shape — string-pattern labels, for example, are
// never indexed, and an unknown name must not be confused with a proven
// absence. known=true with count 0 is an upper bound like any other:
// no indexed document contains the label. Counts are upper bounds for
// every individual document, which is the planner's never-underestimate
// soundness requirement: a document whose evaluation selects a label
// always contributes its exact occurrence count here.
func (x *Index) LabelCount(name string) (count uint64, known bool) {
	if !strings.HasPrefix(name, tagPrefix) {
		return 0, false
	}
	id := x.dict.Lookup(name)
	if id == label.Invalid {
		return 0, true
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.totals[id], true
}

// TreeSize implements the planner's estimator contract: the total number
// of element tree nodes across all indexed documents — the cost ceiling
// for steps the estimator knows nothing about.
func (x *Index) TreeSize() uint64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.treeTotal
}

// Get returns the synopsis for name, or nil.
func (x *Index) Get(name string) *Synopsis {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.syns[name]
}

// Len returns the number of indexed documents.
func (x *Index) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.syns)
}

// MemBytes estimates the index's in-memory footprint: every synopsis
// plus the dictionary strings.
func (x *Index) MemBytes() int64 {
	x.mu.RLock()
	var b int64
	for _, s := range x.syns {
		b += s.MemBytes()
	}
	x.mu.RUnlock()
	x.dict.mu.RLock()
	for _, name := range x.dict.schema.Names() {
		b += int64(len(name)) + 32
	}
	x.dict.mu.RUnlock()
	return b
}

// Resolve translates a query signature against the index's dictionary,
// or returns nil when the signature cannot prune.
func (x *Index) Resolve(sig *xpath.Signature) *Resolved {
	return Resolve(sig, x.dict)
}
