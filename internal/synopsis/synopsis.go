// Package synopsis implements the catalog-level path-synopsis index: a
// tiny per-document summary — itself a DAG, the paper's own core idea
// turned into an index — that lets a multi-document store prove "this
// document cannot match this query" without touching the document's
// compressed instance at all.
//
// A Synopsis holds two conservative abstractions of one document:
//
//   - the set of tag labels that occur anywhere in it, as a bitset over a
//     catalog-wide interned label dictionary (Dict), and
//   - a bounded-depth root-path synopsis: the set of label paths from the
//     document root, DAG-deduplicated into a trie, truncated at depth K
//     with a "deeper" marker on truncated branches.
//
// A query's xpath.Signature (required label groups, root-anchored path
// prefix) is checked against a synopsis with CanMatch; a false answer is
// a proof that full evaluation would select nothing, so store.QueryAll
// can skip the document. Everything on the read path is immutable after
// construction, keeping the index as coordination-free as the rest of
// the store: lookups share the Dict under a read lock and synopses with
// no lock at all.
//
// Beyond the boolean prune, a synopsis is also a cardinality estimator:
// every label carries its tree-node occurrence count and every trie node
// the number of tree nodes whose root path ends there, both computed by
// multiplicity propagation over the DAG without decompressing. The
// counts feed the cost-based planner (internal/plan) — per-label totals
// aggregated across the Index order commuting steps by selectivity, and
// ChainCount answers root-anchored child-chain queries exactly, straight
// from the sidecar, when the trie fully covers the chain.
//
// Synopses persist as versioned, CRC-framed sidecar files next to each
// archive (doc.xca -> doc.xcs, see sidecar.go); absent or unreadable
// sidecars degrade to a full scan of that document, never to a wrong
// answer.
package synopsis

import (
	"math"
	"strings"

	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/xpath"
)

// Defaults for Build's zero-valued options.
const (
	// DefaultDepth is the root-path truncation depth K.
	DefaultDepth = 8
	// DefaultMaxNodes caps the path trie; documents with more distinct
	// truncated root paths mark the synopsis as overflowed, which
	// disables prefix pruning (label-set pruning still applies).
	DefaultMaxNodes = 4096
)

// tagPrefix selects the labels a synopsis records: element tags, the only
// relations query signatures can require. Text and attribute relations
// (archive skeletons carry them) are skipped.
const tagPrefix = "tag:"

// Options configures Build. The zero value selects the defaults.
type Options struct {
	Depth    int // root-path truncation depth K; <= 0 selects DefaultDepth
	MaxNodes int // trie node cap; <= 0 selects DefaultMaxNodes
}

// Synopsis is one document's summary. It is immutable after Build (or
// sidecar decode) and safe for concurrent use without locking.
type Synopsis struct {
	labels   label.Set           // dict IDs of tag labels present anywhere
	counts   map[label.ID]uint64 // tree-node occurrences per tag label
	treeSize uint64              // element tree nodes in the document
	nodes    []pathNode          // root-path trie; nodes[0] is the (unlabelled) root
	depth    int                 // truncation depth the trie was built with
	overflow bool                // trie capped: prefix checks are inconclusive
	sat      bool                // a count saturated: counts are lower bounds only
}

// pathNode is one trie vertex: its children, keyed by dict label ID,
// whether the document's element paths continue below the truncation
// depth here, and how many tree nodes have exactly this root path.
type pathNode struct {
	children []childRef
	deeper   bool
	count    uint64
}

// childRef orders children by dict ID for deterministic encoding.
type childRef struct {
	lbl  label.ID
	node int32
}

// Depth returns the truncation depth the synopsis was built with.
func (s *Synopsis) Depth() int { return s.depth }

// Overflow reports whether the path trie hit its node cap (prefix checks
// then answer "may match" unconditionally).
func (s *Synopsis) Overflow() bool { return s.overflow }

// NumLabels returns how many distinct tag labels the document contains.
func (s *Synopsis) NumLabels() int { return s.labels.Count() }

// NumPathNodes returns the size of the root-path trie (excluding its
// virtual root).
func (s *Synopsis) NumPathNodes() int { return len(s.nodes) - 1 }

// TreeSize returns the number of element nodes of the uncompressed tree,
// computed at build time by multiplicity propagation. When Saturated
// reports true it is a lower bound.
func (s *Synopsis) TreeSize() uint64 { return s.treeSize }

// Saturated reports whether any statistic overflowed uint64 during the
// build; counts are then lower bounds and ChainCount answers inexactly.
func (s *Synopsis) Saturated() bool { return s.sat }

// LabelTreeCount returns how many tree nodes of the document carry the
// given dict label (0 for labels the document does not contain).
func (s *Synopsis) LabelTreeCount(id label.ID) uint64 { return s.counts[id] }

// MemBytes estimates the synopsis's in-memory footprint for cache and
// stats accounting.
func (s *Synopsis) MemBytes() int64 {
	b := int64(len(s.labels))*8 + 64 + int64(len(s.counts))*16
	for i := range s.nodes {
		b += 32 + int64(len(s.nodes[i].children))*8
	}
	return b
}

// Build summarises one compressed instance. It accepts both query
// skeletons (tag labels only) and archive skeletons (which add text and
// attribute leaves — those carry no tag label and are skipped, so both
// forms yield the identical synopsis for the same document). The root
// vertex's own labels join the label set but, matching the query
// algebra's child-step semantics, paths start at the root's children.
func Build(in *dag.Instance, dict *Dict, opts Options) *Synopsis {
	if opts.Depth <= 0 {
		opts.Depth = DefaultDepth
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = DefaultMaxNodes
	}
	s := &Synopsis{depth: opts.Depth, nodes: make([]pathNode, 1)}

	// Intern the instance's tag names in one short lock round over the
	// (small, distinct) schema — not per vertex-label occurrence — so a
	// build during ingest never stalls concurrent fan-outs' dictionary
	// reads for longer than the schema walk.
	toDict := make([]label.ID, in.Schema.Len())
	dict.mu.Lock()
	for id := 0; id < in.Schema.Len(); id++ {
		if name := in.Schema.Name(label.ID(id)); strings.HasPrefix(name, tagPrefix) {
			toDict[id] = dict.internLocked(name)
		} else {
			toDict[id] = label.Invalid
		}
	}
	dict.mu.Unlock()

	// One lock-free pass over the vertices: the tag-label bitset (set
	// only for labels that actually occur on a vertex), plus each
	// vertex's tag IDs for the path walk.
	tags := make([][]label.ID, len(in.Verts))
	for i := range in.Verts {
		for _, id := range in.Verts[i].Labels.Members() {
			did := toDict[id]
			if did == label.Invalid {
				continue
			}
			s.labels = s.labels.Set(did)
			tags[i] = append(tags[i], did)
		}
	}

	if in.Root == dag.NilVertex {
		return s
	}
	s.countTotals(in, tags)

	b := &trieBuilder{
		syn:      s,
		inst:     in,
		tags:     tags,
		maxNodes: opts.MaxNodes,
	}
	b.walk(in.Root, opts.Depth)
	if s.overflow {
		// A capped trie under-represents the document; keep it empty so
		// matching relies on the overflow flag alone.
		s.nodes = s.nodes[:1]
		s.nodes[0] = pathNode{}
	}
	return s
}

// countTotals computes treeSize and the per-label tree-node counts by one
// multiplicity-propagation pass in topological order — the same trick
// PathCounts uses, so a vertex shared by many DAG paths is weighted by
// how many tree nodes it stands for, without decompressing.
func (s *Synopsis) countTotals(in *dag.Instance, tags [][]label.ID) {
	mult := make([]uint64, len(in.Verts))
	mult[in.Root] = 1
	for _, v := range in.TopoOrder() {
		m := mult[v]
		if m == 0 {
			continue
		}
		for _, e := range in.Verts[v].Edges {
			mult[e.Child] = s.satAdd(mult[e.Child], s.satMul(m, uint64(e.Count)))
		}
	}
	s.counts = make(map[label.ID]uint64)
	for i := range in.Verts {
		if mult[i] == 0 || len(tags[i]) == 0 {
			continue
		}
		s.treeSize = s.satAdd(s.treeSize, mult[i])
		for _, t := range tags[i] {
			s.counts[t] = s.satAdd(s.counts[t], mult[i])
		}
	}
}

// visitKey identifies trie expansion state per (vertex, trie node): a
// shared DAG subtree reached twice under the same label prefix
// contributes the same paths, which is exactly the DAG-deduplication
// that keeps synopses tiny on highly compressed documents. The builder
// carries one multiplicity per key so node counts weight each shared
// subtree by the number of tree nodes it stands for.
type visitKey struct {
	v    dag.VertexID
	node int32
}

type trieBuilder struct {
	syn      *Synopsis
	inst     *dag.Instance
	tags     [][]label.ID
	maxNodes int
}

// walk inserts the label paths of root's element descendants into the
// trie, level by level so the multiplicity of every (vertex, trie node)
// pair is complete before the pair expands. Iteration follows the
// first-visit order of each level (never map order), keeping trie child
// order — and therefore the sidecar encoding — deterministic.
func (b *trieBuilder) walk(root dag.VertexID, depth int) {
	level := []visitKey{{root, 0}}
	mult := map[visitKey]uint64{{root, 0}: 1}
	for d := 0; d < depth && len(level) > 0; d++ {
		nextMult := make(map[visitKey]uint64, len(level))
		next := level[:0:0]
		for _, it := range level {
			m := mult[it]
			for _, e := range b.inst.Verts[it.v].Edges {
				c := e.Child
				ct := b.tags[c]
				if len(ct) == 0 {
					// Not an element (text/attribute leaf in archive
					// skeletons). An unlabelled vertex with children would
					// make child-step reasoning unsound, so degrade to
					// overflow if one appears.
					if len(b.inst.Verts[c].Edges) > 0 {
						b.syn.overflow = true
						return
					}
					continue
				}
				em := b.syn.satMul(m, uint64(e.Count))
				for _, t := range ct {
					n2, ok := b.child(it.node, t)
					if !ok {
						return // overflow
					}
					b.syn.nodes[n2].count = b.syn.satAdd(b.syn.nodes[n2].count, em)
					if d == depth-1 {
						if b.hasElementChild(c) {
							b.syn.nodes[n2].deeper = true
						}
						continue
					}
					key := visitKey{c, n2}
					if _, seen := nextMult[key]; !seen {
						next = append(next, key)
					}
					nextMult[key] += em
				}
			}
		}
		level, mult = next, nextMult
	}
}

// child returns the trie child of node labelled t, creating it if new.
// ok is false when the node cap was hit.
func (b *trieBuilder) child(node int32, t label.ID) (int32, bool) {
	for _, cr := range b.syn.nodes[node].children {
		if cr.lbl == t {
			return cr.node, true
		}
	}
	if len(b.syn.nodes) > b.maxNodes {
		b.syn.overflow = true
		return 0, false
	}
	n2 := int32(len(b.syn.nodes))
	b.syn.nodes = append(b.syn.nodes, pathNode{})
	b.syn.nodes[node].children = append(b.syn.nodes[node].children, childRef{lbl: t, node: n2})
	return n2, true
}

// satAdd and satMul saturate at MaxUint64 and latch the sat flag, so an
// adversarially compressed document can never wrap a count into a small
// "exact" answer — it degrades to inexact instead.
func (s *Synopsis) satAdd(a, b uint64) uint64 {
	if c := a + b; c >= a {
		return c
	}
	s.sat = true
	return math.MaxUint64
}

func (s *Synopsis) satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if c := a * b; c/a == b {
		return c
	}
	s.sat = true
	return math.MaxUint64
}

func (b *trieBuilder) hasElementChild(v dag.VertexID) bool {
	for _, e := range b.inst.Verts[v].Edges {
		if len(b.tags[e.Child]) > 0 {
			return true
		}
	}
	return false
}

// Resolved is a signature translated to dict IDs once, so testing it
// against many synopses does no string hashing. Obtain one with
// Index.Resolve (or Resolve with an explicit dict).
type Resolved struct {
	// groups holds, per required group, the dict IDs of its labels that
	// exist anywhere in the catalog. unsat marks a group none of whose
	// labels is known to the dict: no indexed document can satisfy it.
	groups [][]label.ID
	unsat  bool

	// prefix in dict IDs; wildcard entries are wildcardLbl, labels
	// unknown to the dict unknownLbl (they fail every trie lookup but
	// still match through "deeper" truncation points).
	prefix   []label.ID
	anchored bool
}

const (
	wildcardLbl label.ID = -1
	unknownLbl  label.ID = -2
)

// Resolve translates sig against dict. Returns nil when sig carries
// nothing checkable (callers then scan every document).
func Resolve(sig *xpath.Signature, dict *Dict) *Resolved {
	if !sig.Prunable() {
		return nil
	}
	rs := &Resolved{anchored: sig.Anchored}
	dict.mu.RLock()
	defer dict.mu.RUnlock()
	for _, group := range sig.Required {
		var ids []label.ID
		for _, name := range group {
			if id := dict.schema.Lookup(name); id != label.Invalid {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			rs.unsat = true
			return rs
		}
		rs.groups = append(rs.groups, ids)
	}
	if sig.Anchored {
		for _, name := range sig.Prefix {
			switch {
			case name == "":
				rs.prefix = append(rs.prefix, wildcardLbl)
			default:
				if id := dict.schema.Lookup(name); id != label.Invalid {
					rs.prefix = append(rs.prefix, id)
				} else {
					rs.prefix = append(rs.prefix, unknownLbl)
				}
			}
		}
	}
	return rs
}

// CanMatch reports whether the document summarised by s could produce a
// non-empty result for the resolved signature. False is a proof of
// emptiness; true is merely "cannot rule it out". A nil receiver or nil
// signature always matches (no synopsis, no pruning).
func (s *Synopsis) CanMatch(rs *Resolved) bool {
	if s == nil || rs == nil {
		return true
	}
	if rs.unsat {
		return false
	}
	for _, group := range rs.groups {
		ok := false
		for _, id := range group {
			if s.labels.Has(id) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if !rs.anchored || len(rs.prefix) == 0 || s.overflow {
		return true
	}
	return s.matchPrefix(rs.prefix)
}

// ChainCount returns the number of tree nodes whose root path is exactly
// the given label chain. exact=true makes count authoritative either
// way: a positive count is the precise answer a full evaluation of
// /a/b/.../z would produce (matching the query algebra's
// one-tree-node-per-edge-path semantics), and an exact zero is a proof
// of emptiness. exact=false means the synopsis cannot decide — the trie
// overflowed, a count saturated, the chain descends past the truncation
// depth, or the chain is empty — and the caller must evaluate.
//
// Chain entries come from Dict.ResolveChain; an entry for a label the
// catalog dictionary has never seen yields an exact zero, since every
// indexed synopsis interned all its labels.
func (s *Synopsis) ChainCount(chain []label.ID) (count uint64, exact bool) {
	if s == nil || len(chain) == 0 {
		return 0, false
	}
	for _, p := range chain {
		if p == unknownLbl {
			return 0, true
		}
		if p < 0 { // wildcardLbl or other sentinel: not chain-countable
			return 0, false
		}
	}
	if s.overflow || s.sat {
		return 0, false
	}
	frontier := []int32{0}
	next := make([]int32, 0, 4)
	for _, p := range chain {
		next = next[:0]
		for _, ni := range frontier {
			n := &s.nodes[ni]
			if n.deeper {
				return 0, false // paths continue beyond the synopsis depth
			}
			for _, cr := range n.children {
				if cr.lbl == p {
					next = append(next, cr.node)
					break
				}
			}
		}
		if len(next) == 0 {
			return 0, true
		}
		frontier, next = next, frontier
	}
	for _, ni := range frontier {
		count += s.nodes[ni].count
	}
	return count, true
}

// ResolveChain translates a chain of label names (as a ChainShape
// carries them) to dict IDs for ChainCount. Names the dictionary has
// never interned map to a sentinel that ChainCount answers with an
// exact zero — no indexed document can contain them.
func (d *Dict) ResolveChain(names []string) []label.ID {
	ids := make([]label.ID, len(names))
	d.mu.RLock()
	defer d.mu.RUnlock()
	for i, name := range names {
		if id := d.schema.Lookup(name); id != label.Invalid {
			ids[i] = id
		} else {
			ids[i] = unknownLbl
		}
	}
	return ids
}

// matchPrefix walks the trie along the prefix, branching over every
// child at wildcard positions. A truncation point ("deeper") reached
// before the prefix is consumed is inconclusive, so it matches.
func (s *Synopsis) matchPrefix(prefix []label.ID) bool {
	frontier := []int32{0}
	next := make([]int32, 0, 4)
	for _, p := range prefix {
		next = next[:0]
		for _, ni := range frontier {
			n := &s.nodes[ni]
			if n.deeper {
				return true // paths continue beyond the synopsis depth
			}
			if p == wildcardLbl {
				for _, cr := range n.children {
					next = append(next, cr.node)
				}
				continue
			}
			for _, cr := range n.children {
				if cr.lbl == p {
					next = append(next, cr.node)
					break
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		frontier, next = next, frontier
	}
	return true
}
