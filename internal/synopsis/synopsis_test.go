package synopsis

import (
	"bytes"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/container"
	"repro/internal/skeleton"
	"repro/internal/xpath"
)

// buildFrom compresses doc's full tag skeleton and summarises it.
func buildFrom(t *testing.T, doc string, dict *Dict, opts Options) *Synopsis {
	t.Helper()
	inst, _, err := skeleton.BuildCompressed([]byte(doc), skeleton.Options{Mode: skeleton.TagsAll})
	if err != nil {
		t.Fatal(err)
	}
	return Build(inst, dict, opts)
}

// canMatch resolves query's signature against dict and tests it.
func canMatch(t *testing.T, s *Synopsis, dict *Dict, query string) bool {
	t.Helper()
	prog, err := xpath.CompileQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	return s.CanMatch(Resolve(prog.Sig, dict))
}

// paths enumerates the trie's maximal label paths as "a/b/c" (with "+"
// appended at truncation points), sorted — a canonical form for
// structural comparisons.
func (s *Synopsis) testPaths(dict *Dict) []string {
	var out []string
	var walk func(ni int32, prefix []string)
	walk = func(ni int32, prefix []string) {
		n := &s.nodes[ni]
		if len(n.children) == 0 {
			p := strings.Join(prefix, "/")
			if n.deeper {
				p += "+"
			}
			if p != "" {
				out = append(out, p)
			}
			return
		}
		for _, cr := range n.children {
			walk(cr.node, append(prefix, dict.Name(cr.lbl)))
		}
	}
	walk(0, nil)
	sort.Strings(out)
	return out
}

func TestBuildAndMatch(t *testing.T) {
	dict := NewDict()
	s := buildFrom(t, `<a><b><c/></b><b><d/></b></a>`, dict, Options{})

	if got := s.NumLabels(); got != 4 {
		t.Fatalf("NumLabels = %d, want 4", got)
	}
	want := []string{"tag:a/tag:b/tag:c", "tag:a/tag:b/tag:d"}
	if got := s.testPaths(dict); !reflect.DeepEqual(got, want) {
		t.Fatalf("paths = %v, want %v", got, want)
	}

	cases := []struct {
		query string
		want  bool
	}{
		{`/a/b/c`, true},
		{`/a/b/d`, true},
		{`/a/c`, false},       // c exists, but not at that path
		{`/a/b/e`, false},     // e nowhere in the document
		{`//c`, true},         // no prefix, label present
		{`//e`, false},        // label absent
		{`/a/*/c`, true},      // wildcard position
		{`/*/*/*`, true},      // pure depth requirement
		{`/*/*/*/*`, false},   // deeper than any path
		{`//a[c or e]`, true}, // one disjunct present
		{`//a[e or f]`, false},
		{`//a[not(e)]`, true},
		{`//a["sometext"]`, true}, // string conditions never prune
		{`/b/c`, false},           // both labels present, path not root-anchored
		{`/self::*[a/b/c]`, true},
		{`/self::*[a/c/b]`, true}, // labels present; no prefix from predicates
	}
	for _, c := range cases {
		if got := canMatch(t, s, dict, c.query); got != c.want {
			t.Errorf("CanMatch(%q) = %v, want %v", c.query, got, c.want)
		}
	}
}

func TestDepthTruncation(t *testing.T) {
	dict := NewDict()
	s := buildFrom(t, `<a><b><c><d/></c></b><e/></a>`, dict, Options{Depth: 2})

	want := []string{"tag:a/tag:b+", "tag:a/tag:e"}
	if got := s.testPaths(dict); !reflect.DeepEqual(got, want) {
		t.Fatalf("paths = %v, want %v", got, want)
	}
	// Beyond the truncation depth the synopsis cannot rule anything out
	// under a/b, but complete paths stay exact.
	for query, want := range map[string]bool{
		`/a/b/c/d`: true,
		`/a/b/x/y`: false, // x is not a label at all
		`/a/e/c`:   false, // a/e is complete at depth 2
		`/a/x`:     false,
	} {
		if got := canMatch(t, s, dict, query); got != want {
			t.Errorf("CanMatch(%q) = %v, want %v", query, got, want)
		}
	}
}

func TestDagDeduplication(t *testing.T) {
	// Many identical records share one DAG subtree; the trie must stay
	// proportional to the distinct paths, not the document.
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 500; i++ {
		sb.WriteString("<rec><x/><y/></rec>")
	}
	sb.WriteString("</root>")
	dict := NewDict()
	s := buildFrom(t, sb.String(), dict, Options{})
	if got := s.NumPathNodes(); got != 4 { // root, rec, x, y minus virtual root
		t.Fatalf("NumPathNodes = %d, want 4", got)
	}
}

func TestOverflow(t *testing.T) {
	// More distinct paths than the cap: prefix checks become
	// inconclusive (always match) but label pruning still works.
	var sb strings.Builder
	sb.WriteString("<r>")
	for _, a := range []string{"a", "b", "c", "d"} {
		for _, b := range []string{"e", "f", "g", "h"} {
			sb.WriteString("<" + a + "><" + b + "/></" + a + ">")
		}
	}
	sb.WriteString("</r>")
	dict := NewDict()
	s := buildFrom(t, sb.String(), dict, Options{MaxNodes: 3})
	if !s.Overflow() {
		t.Fatal("expected overflow")
	}
	// All labels present but in an order no root path has: only the
	// prefix check could prune this, and overflow disables it.
	if !canMatch(t, s, dict, `/e/a/r`) {
		t.Fatal("overflowed synopsis must not prune on prefix")
	}
	if canMatch(t, s, dict, `//zzz`) {
		t.Fatal("label pruning must survive overflow")
	}
}

func TestArchiveSkeletonEquivalence(t *testing.T) {
	// A synopsis built from the archive skeleton (with text/attr leaves)
	// must equal one built from the distilled query skeleton.
	doc := `<a id="1"><b>hello <i>world</i></b><b><c>text</c></b></a>`
	qd, ad := NewDict(), NewDict()
	q := buildFrom(t, doc, qd, Options{})

	arch, err := container.Split([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	a := Build(arch.Skeleton, ad, Options{})

	if got, want := a.testPaths(ad), q.testPaths(qd); !reflect.DeepEqual(got, want) {
		t.Fatalf("archive paths = %v, skeleton paths = %v", got, want)
	}
	if a.NumLabels() != q.NumLabels() {
		t.Fatalf("label counts differ: %d vs %d", a.NumLabels(), q.NumLabels())
	}
}

func TestSidecarRoundtrip(t *testing.T) {
	dict := NewDict()
	s := buildFrom(t, `<a><b><c/></b><b><d/></b><e at="v">txt</e></a>`, dict, Options{Depth: 2})

	var buf bytes.Buffer
	if err := EncodeSidecar(&buf, s, dict, 12345); err != nil {
		t.Fatal(err)
	}
	dict2 := NewDict()
	dict2.Intern("tag:unrelated") // shift IDs: decode must be dict-independent
	got, gotBytes, err := DecodeSidecar(buf.Bytes(), dict2)
	if err != nil {
		t.Fatal(err)
	}
	if gotBytes != 12345 {
		t.Fatalf("archive size = %d after roundtrip, want 12345", gotBytes)
	}
	if !reflect.DeepEqual(got.testPaths(dict2), s.testPaths(dict)) {
		t.Fatalf("paths differ after roundtrip: %v vs %v", got.testPaths(dict2), s.testPaths(dict))
	}
	if got.Depth() != s.Depth() || got.Overflow() != s.Overflow() || got.NumLabels() != s.NumLabels() {
		t.Fatalf("metadata differs after roundtrip")
	}
}

func TestSidecarRejectsCorruption(t *testing.T) {
	dict := NewDict()
	s := buildFrom(t, `<a><b/><c/></a>`, dict, Options{})
	var buf bytes.Buffer
	if err := EncodeSidecar(&buf, s, dict, 7); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Every single-byte flip must be rejected (CRC) — as must any
	// truncation.
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		if _, _, err := DecodeSidecar(bad, NewDict()); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	for _, n := range []int{0, 1, len(good) / 2, len(good) - 1} {
		if _, _, err := DecodeSidecar(good[:n], NewDict()); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncate to %d: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestSidecarWriteLoad(t *testing.T) {
	dict := NewDict()
	s := buildFrom(t, `<a><b/></a>`, dict, Options{})
	path := t.TempDir() + "/doc.xcs"
	if err := WriteSidecar(path, s, dict, 99); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSidecar(path, NewDict(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLabels() != s.NumLabels() {
		t.Fatalf("labels differ after write/load")
	}
	// A size mismatch marks the pairing stale: the sidecar describes a
	// different archive (e.g. a replacement crashed before the new
	// sidecar landed) and must be rejected, not trusted.
	if _, err := LoadSidecar(path, NewDict(), 100); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("stale pairing: err = %v, want ErrCorrupt", err)
	}
	// Negative size skips the check (inspection tools).
	if _, err := LoadSidecar(path, NewDict(), -1); err != nil {
		t.Fatalf("size check not skipped: %v", err)
	}
	if _, err := LoadSidecar(t.TempDir()+"/missing.xcs", NewDict(), -1); err == nil {
		t.Fatal("loading a missing sidecar must fail")
	}
}

func TestSidecarPath(t *testing.T) {
	if got := SidecarPath("/x/doc.xca"); got != "/x/doc.xcs" {
		t.Fatalf("SidecarPath = %q", got)
	}
	if got := SidecarPath("/x/doc.other"); got != "/x/doc.other.xcs" {
		t.Fatalf("SidecarPath = %q", got)
	}
}

func TestIndex(t *testing.T) {
	x := NewIndex()
	s := buildFrom(t, `<a><b/></a>`, x.Dict(), Options{})
	x.Put("doc", s)
	if x.Get("doc") != s || x.Len() != 1 {
		t.Fatal("Put/Get failed")
	}
	x.Put("doc", nil) // nil removes
	if x.Get("doc") != nil || x.Len() != 0 {
		t.Fatal("nil Put must remove")
	}
	x.Put("doc", s)
	x.Remove("doc")
	if x.Get("doc") != nil {
		t.Fatal("Remove failed")
	}
	if x.MemBytes() < 0 {
		t.Fatal("MemBytes negative")
	}

	// A signature naming a label no indexed document contains resolves
	// unsatisfiable: synopsis-backed documents are pruned, and a nil
	// synopsis (unindexed document) still matches.
	prog, err := xpath.CompileQuery(`//nowhere`)
	if err != nil {
		t.Fatal(err)
	}
	rs := x.Resolve(prog.Sig)
	if rs == nil {
		t.Fatal("prunable signature resolved nil")
	}
	if s.CanMatch(rs) {
		t.Fatal("unsatisfiable group must prune indexed documents")
	}
	if !(*Synopsis)(nil).CanMatch(rs) {
		t.Fatal("nil synopsis must never be pruned")
	}
}
