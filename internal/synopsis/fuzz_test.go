package synopsis

import (
	"bytes"
	"testing"

	"repro/internal/dag"
	"repro/internal/skeleton"
)

func skeletonBuild(doc string) (*dag.Instance, error) {
	inst, _, err := skeleton.BuildCompressed([]byte(doc), skeleton.Options{Mode: skeleton.TagsAll})
	return inst, err
}

// FuzzDecodeSidecar drives the sidecar decoder with arbitrary bytes: it
// must never panic or over-allocate, and anything it accepts must
// re-encode to something it accepts again (the decoder defines the
// format; CI runs this as a fuzz smoke target).
func FuzzDecodeSidecar(f *testing.F) {
	dict := NewDict()
	for _, doc := range []string{
		`<a/>`,
		`<a><b><c/></b><b><d/></b></a>`,
		`<r><x><y><z><w/></z></y></x></r>`,
	} {
		inst, err := skeletonBuild(doc)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeSidecar(&buf, Build(inst, dict, Options{Depth: 3}), dict, 42); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("XCS1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDict()
		s, archiveBytes, err := DecodeSidecar(data, d)
		if err != nil {
			return
		}
		// Whatever estimator statistics the decoder accepted, querying
		// them must not panic and must be deterministic — the planner
		// consumes them straight off disk.
		members := s.labels.Members()
		chain := members
		if len(chain) > 3 {
			chain = chain[:3]
		}
		c1, e1 := s.ChainCount(chain)
		c2, e2 := s.ChainCount(chain)
		if c1 != c2 || e1 != e2 {
			t.Fatalf("ChainCount not deterministic: (%d,%v) then (%d,%v)", c1, e1, c2, e2)
		}
		for _, id := range members {
			_ = s.LabelTreeCount(id)
		}
		var buf bytes.Buffer
		if err := EncodeSidecar(&buf, s, d, archiveBytes); err != nil {
			t.Fatalf("re-encoding an accepted sidecar: %v", err)
		}
		s2, _, err := DecodeSidecar(buf.Bytes(), NewDict())
		if err != nil {
			t.Fatalf("re-decoding a re-encoded sidecar: %v", err)
		}
		// The estimator statistics must survive the roundtrip.
		if s2.TreeSize() != s.TreeSize() || s2.Saturated() != s.Saturated() ||
			s2.Overflow() != s.Overflow() || s2.Depth() != s.Depth() ||
			s2.NumLabels() != s.NumLabels() || s2.NumPathNodes() != s.NumPathNodes() {
			t.Fatalf("roundtrip changed the synopsis: %+v vs %+v", s, s2)
		}
	})
}
