package synopsis

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/fault"
	"repro/internal/label"
)

// Ext is the sidecar file extension: doc.xca is summarised by doc.xcs.
const Ext = ".xcs"

// Sidecar format. The whole file is one CRC-framed payload:
//
//	payload := magic "XCS1" version archiveBytes depth
//	           flags(bit0 overflow, bit1 saturated)
//	           treeSize                           element tree nodes
//	           nLabels (label string count)*      tag-label set + tree counts
//	           nNodes node(root)                  path trie, preorder
//	node    := flags(bit0 deeper) count nChildren (labelIndex node)*
//	file    := payload crc32(payload)             IEEE, little-endian
//
// Version 2 added the estimator statistics (treeSize, per-label counts,
// per-node counts, the saturated flag); version-1 sidecars decode as
// ErrCorrupt and are rebuilt by the store like any stale sidecar.
//
// Varints are unsigned little-endian; strings are length-prefixed UTF-8.
// Trie labels reference the label table by index. archiveBytes is the
// size of the archive the sidecar summarises: a sidecar is only valid
// for the exact archive bytes it was written against, and recording the
// size lets a reopening store reject — for the price of a stat it
// already paid — a stale sidecar left behind by a crash between an
// archive replacement and its sidecar write (the CRC alone cannot catch
// that: the stale file is internally consistent). The check is
// best-effort: two encodings of different documents can collide on
// length, so replacements should go through the compactor (which writes
// the paired sidecar before publishing) rather than raw file copies;
// when in doubt, delete the .xcs and let the store rebuild it. The
// format is
// self-contained: decoding needs only the catalog dictionary to intern
// into, and any mismatch — magic, version, CRC, structural bound —
// returns ErrCorrupt, which callers treat as "rebuild or scan", never as
// data.
const (
	sidecarMagic = "XCS1"
	version      = 2

	maxLabels   = 1 << 20
	maxNameLen  = 1 << 16
	maxNodes    = 1 << 22
	maxDepth    = 1 << 8
	maxFileSize = 64 << 20
)

// ErrCorrupt wraps all sidecar decoding failures caused by malformed
// input (including version and CRC mismatches).
var ErrCorrupt = errors.New("synopsis: corrupt sidecar")

// SidecarPath returns the sidecar path for an archive path: the .xca
// extension is replaced by .xcs (other extensions get .xcs appended).
func SidecarPath(archivePath string) string {
	if s, ok := strings.CutSuffix(archivePath, ".xca"); ok {
		return s + Ext
	}
	return archivePath + Ext
}

// EncodeSidecar writes s to w in sidecar format, resolving label IDs
// through dict (which must be the dictionary s was built against).
// archiveBytes is the size of the archive file s summarises (0 when the
// synopsis is not paired with an archive).
func EncodeSidecar(w io.Writer, s *Synopsis, dict *Dict, archiveBytes int64) error {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	uv := func(v uint64) {
		buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
	}

	buf.WriteString(sidecarMagic)
	uv(version)
	uv(uint64(archiveBytes))
	uv(uint64(s.depth))
	var flags byte
	if s.overflow {
		flags |= 1
	}
	if s.sat {
		flags |= 2
	}
	buf.WriteByte(flags)
	uv(s.treeSize)

	members := s.labels.Members()
	index := make(map[label.ID]int, len(members))
	uv(uint64(len(members)))
	dict.mu.RLock()
	for i, id := range members {
		name := dict.schema.Name(id)
		index[id] = i
		uv(uint64(len(name)))
		buf.WriteString(name)
		uv(s.counts[id])
	}
	dict.mu.RUnlock()

	uv(uint64(len(s.nodes)))
	var write func(ni int32)
	write = func(ni int32) {
		n := &s.nodes[ni]
		var f byte
		if n.deeper {
			f |= 1
		}
		buf.WriteByte(f)
		uv(n.count)
		uv(uint64(len(n.children)))
		for _, cr := range n.children {
			uv(uint64(index[cr.lbl]))
			write(cr.node)
		}
	}
	write(0)

	crc := crc32.ChecksumIEEE(buf.Bytes())
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc)
	buf.Write(crcb[:])
	_, err := w.Write(buf.Bytes())
	return err
}

// DecodeSidecar parses a sidecar from data, interning its labels into
// dict, and returns the synopsis plus the size of the archive it was
// written against. All failures wrap ErrCorrupt.
func DecodeSidecar(data []byte, dict *Dict) (*Synopsis, int64, error) {
	if len(data) > maxFileSize {
		return nil, 0, fmt.Errorf("%w: %d bytes exceeds the size bound", ErrCorrupt, len(data))
	}
	if len(data) < len(sidecarMagic)+4 {
		return nil, 0, fmt.Errorf("%w: truncated (%d bytes)", ErrCorrupt, len(data))
	}
	payload, crcb := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcb) {
		return nil, 0, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	d := &sidecarReader{data: payload}
	if string(d.bytes(len(sidecarMagic))) != sidecarMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := d.uvarint(); v != version {
		return nil, 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	archiveBytes := int64(d.uvarint())
	depth := d.uvarint()
	if depth > maxDepth {
		return nil, 0, fmt.Errorf("%w: depth %d too large", ErrCorrupt, depth)
	}
	flags := d.byte()
	s := &Synopsis{depth: int(depth), overflow: flags&1 != 0, sat: flags&2 != 0}
	s.treeSize = d.uvarint()

	nLabels := d.uvarint()
	if nLabels > maxLabels {
		return nil, 0, fmt.Errorf("%w: %d labels exceeds bound", ErrCorrupt, nLabels)
	}
	ids := make([]label.ID, nLabels)
	counts := make([]uint64, nLabels)
	dict.mu.Lock()
	for i := range ids {
		nameLen := d.uvarint()
		if nameLen > maxNameLen {
			d.fail = true
			break
		}
		name := d.bytes(int(nameLen))
		if d.fail {
			break
		}
		ids[i] = dict.internLocked(string(name))
		s.labels = s.labels.Set(ids[i])
		counts[i] = d.uvarint()
	}
	dict.mu.Unlock()
	if d.fail {
		return nil, 0, fmt.Errorf("%w: truncated label table", ErrCorrupt)
	}
	s.counts = make(map[label.ID]uint64, nLabels)
	for i, id := range ids {
		s.counts[id] = counts[i]
	}

	nNodes := d.uvarint()
	if nNodes == 0 || nNodes > maxNodes {
		return nil, 0, fmt.Errorf("%w: %d trie nodes out of range", ErrCorrupt, nNodes)
	}
	s.nodes = make([]pathNode, 1, nNodes)
	var read func(ni int32, depthLeft int) bool
	read = func(ni int32, depthLeft int) bool {
		if depthLeft < 0 {
			return false
		}
		f := d.byte()
		s.nodes[ni].deeper = f&1 != 0
		s.nodes[ni].count = d.uvarint()
		nChildren := d.uvarint()
		if d.fail || nChildren > uint64(nNodes) {
			return false
		}
		for j := uint64(0); j < nChildren; j++ {
			idx := d.uvarint()
			if d.fail || idx >= nLabels {
				return false
			}
			if uint64(len(s.nodes)) >= nNodes {
				return false
			}
			n2 := int32(len(s.nodes))
			s.nodes = append(s.nodes, pathNode{})
			s.nodes[ni].children = append(s.nodes[ni].children, childRef{lbl: ids[idx], node: n2})
			if !read(n2, depthLeft-1) {
				return false
			}
		}
		return true
	}
	if !read(0, int(depth)) || d.fail {
		return nil, 0, fmt.Errorf("%w: malformed trie", ErrCorrupt)
	}
	if uint64(len(s.nodes)) != nNodes {
		return nil, 0, fmt.Errorf("%w: trie declares %d nodes, carries %d", ErrCorrupt, nNodes, len(s.nodes))
	}
	if d.pos != len(d.data) {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.data)-d.pos)
	}
	return s, archiveBytes, nil
}

// sidecarReader is a failure-latching cursor over the payload.
type sidecarReader struct {
	data []byte
	pos  int
	fail bool
}

func (r *sidecarReader) bytes(n int) []byte {
	if r.fail || n < 0 || r.pos+n > len(r.data) {
		r.fail = true
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *sidecarReader) byte() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *sidecarReader) uvarint() uint64 {
	if r.fail {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail = true
		return 0
	}
	r.pos += n
	return v
}

// WriteSidecar persists s at path atomically: encode into a temp file in
// the same directory, fsync, rename, fsync the directory — the same
// discipline the compactor uses for archives, so a crash leaves either
// the old sidecar or the new one, never a torn file.
func WriteSidecar(path string, s *Synopsis, dict *Dict, archiveBytes int64) error {
	return WriteSidecarFS(fault.OS, path, s, dict, archiveBytes)
}

// WriteSidecarFS is WriteSidecar over an injectable filesystem.
func WriteSidecarFS(fsys fault.FS, path string, s *Synopsis, dict *Dict, archiveBytes int64) error {
	fsys = fault.Get(fsys)
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".synopsis-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		fsys.Remove(tmpName)
		return err
	}
	if err := EncodeSidecar(tmp, s, dict, archiveBytes); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return err
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return err
	}
	if df, err := fsys.Open(dir); err == nil {
		_ = df.Sync()
		_ = df.Close()
	}
	return nil
}

// LoadSidecar reads and decodes the sidecar at path, interning its
// labels into dict. wantArchiveBytes is the current size of the archive
// the sidecar should describe: a mismatch (e.g. the archive was
// replaced but a crash prevented the new sidecar from landing) wraps
// ErrCorrupt; pass a negative value to skip the pairing check
// (inspection tools). Missing files return the underlying fs error.
// Either way the caller falls back to rebuilding (or to a full scan).
func LoadSidecar(path string, dict *Dict, wantArchiveBytes int64) (*Synopsis, error) {
	return LoadSidecarFS(fault.OS, path, dict, wantArchiveBytes)
}

// LoadSidecarFS is LoadSidecar over an injectable filesystem.
func LoadSidecarFS(fsys fault.FS, path string, dict *Dict, wantArchiveBytes int64) (*Synopsis, error) {
	data, err := fault.Get(fsys).ReadFile(path)
	if err != nil {
		return nil, err
	}
	syn, gotBytes, err := DecodeSidecar(data, dict)
	if err != nil {
		return nil, err
	}
	if wantArchiveBytes >= 0 && gotBytes != wantArchiveBytes {
		return nil, fmt.Errorf("%w: sidecar describes a %d-byte archive, found %d bytes (stale pairing)",
			ErrCorrupt, gotBytes, wantArchiveBytes)
	}
	return syn, nil
}

// SidecarInfo is the inspection summary StatSidecar returns — what the
// CLI tools (xcstat, xcarchive stat) print about an archive's sidecar.
type SidecarInfo struct {
	Path  string
	Bytes int64 // sidecar file size; 0 when missing
	Err   error // nil, a fs error (missing), or ErrCorrupt (incl. stale pairing)

	Labels    int
	PathNodes int
	Depth     int
	Overflow  bool
	TreeSize  uint64
}

// StatSidecar inspects the sidecar paired with archivePath.
// archiveBytes is the archive's current size for the pairing check
// (negative skips it). Failures are reported in the Err field, never
// returned: a missing or unreadable sidecar is informational for
// inspection tools — the store rebuilds it at open.
func StatSidecar(archivePath string, archiveBytes int64) SidecarInfo {
	info := SidecarInfo{Path: SidecarPath(archivePath)}
	fi, err := os.Stat(info.Path)
	if err != nil {
		info.Err = err
		return info
	}
	info.Bytes = fi.Size()
	syn, err := LoadSidecar(info.Path, NewDict(), archiveBytes)
	if err != nil {
		info.Err = err
		return info
	}
	info.Labels = syn.NumLabels()
	info.PathNodes = syn.NumPathNodes()
	info.Depth = syn.Depth()
	info.Overflow = syn.Overflow()
	info.TreeSize = syn.TreeSize()
	return info
}

// String renders the summary as one human-readable line (no leading
// label, no trailing newline).
func (info SidecarInfo) String() string {
	switch {
	case info.Bytes == 0 && info.Err != nil:
		return fmt.Sprintf("none (%s; the store builds one at open)", info.Path)
	case info.Err != nil:
		return fmt.Sprintf("%d bytes, UNUSABLE (%v; the store will rebuild it)", info.Bytes, info.Err)
	}
	over := ""
	if info.Overflow {
		over = ", path trie overflowed"
	}
	return fmt.Sprintf("%d bytes, %d labels, %d path nodes, depth %d, %d tree nodes%s",
		info.Bytes, info.Labels, info.PathNodes, info.Depth, info.TreeSize, over)
}
