package synopsis_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/skeleton"
	"repro/internal/synopsis"
	"repro/internal/xpath"
)

// This file pins the one property the whole index stands on: the
// signature extractor and synopsis matcher may only prune a document
// when full evaluation provably returns nothing. Random documents ×
// random queries; whenever evaluation selects anything, CanMatch must
// have said yes — at every truncation depth.

var propVocab = []string{"a", "b", "c", "d", "e"}

// randDoc emits a random small document over propVocab with occasional
// text, depth at most 6.
func randDoc(rng *rand.Rand) string {
	var sb strings.Builder
	var emit func(depth int)
	emit = func(depth int) {
		tag := propVocab[rng.Intn(len(propVocab))]
		sb.WriteString("<" + tag + ">")
		if rng.Intn(3) == 0 {
			sb.WriteString([]string{"alpha", "beta", "gamma"}[rng.Intn(3)])
		}
		if depth < 6 {
			for n := rng.Intn(3); n > 0; n-- {
				emit(depth + 1)
			}
		}
		sb.WriteString("</" + tag + ">")
	}
	emit(0)
	return sb.String()
}

// randQuery emits a random Core XPath query: absolute or relative,
// mixed axes, wildcard and absent-tag tests, nested predicates with
// and/or/not, string and path conditions.
func randQuery(rng *rand.Rand, depth int) string {
	axes := []string{"", "self::", "child::", "parent::", "descendant::",
		"descendant-or-self::", "ancestor::", "following-sibling::",
		"preceding-sibling::", "following::", "preceding::"}
	test := func() string {
		switch rng.Intn(6) {
		case 0:
			return "*"
		case 1:
			return "zz" // never present
		default:
			return propVocab[rng.Intn(len(propVocab))]
		}
	}
	var expr func(d int) string
	var steps func(d int) string
	expr = func(d int) string {
		if d <= 0 {
			return test()
		}
		switch rng.Intn(6) {
		case 0:
			return "(" + expr(d-1) + " and " + expr(d-1) + ")"
		case 1:
			return "(" + expr(d-1) + " or " + expr(d-1) + ")"
		case 2:
			return "not(" + expr(d-1) + ")"
		case 3:
			return `"alpha"`
		default:
			return steps(d - 1)
		}
	}
	steps = func(d int) string {
		n := 1 + rng.Intn(3)
		parts := make([]string, n)
		for i := range parts {
			s := axes[rng.Intn(len(axes))] + test()
			if d > 0 && rng.Intn(3) == 0 {
				s += "[" + expr(d-1) + "]"
			}
			parts[i] = s
		}
		return strings.Join(parts, "/")
	}
	q := steps(depth)
	if rng.Intn(2) == 0 {
		q = "/" + q
	}
	return q
}

// TestNeverPrunesNonEmpty is the soundness property: for random
// documents and random queries, a non-empty evaluation implies the
// synopsis matches the query's signature — the extractor never
// over-claims, at full depth and under aggressive truncation alike.
func TestNeverPrunesNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	const docsN, queriesPerDoc = 150, 12
	nonEmpty, prunedTotal := 0, 0
	for di := 0; di < docsN; di++ {
		doc := randDoc(rng)
		inst, _, err := skeleton.BuildCompressed([]byte(doc), skeleton.Options{Mode: skeleton.TagsAll})
		if err != nil {
			t.Fatalf("doc %d: %v", di, err)
		}
		type depthSyn struct {
			dict *synopsis.Dict
			syn  *synopsis.Synopsis
		}
		var syns []depthSyn
		for _, depth := range []int{1, 2, 3, 8} {
			dict := synopsis.NewDict()
			syns = append(syns, depthSyn{dict, synopsis.Build(inst, dict, synopsis.Options{Depth: depth})})
		}
		for qi := 0; qi < queriesPerDoc; qi++ {
			q := randQuery(rng, 2)
			prog, err := xpath.CompileQuery(q)
			if err != nil {
				t.Fatalf("generated an invalid query %q: %v", q, err)
			}
			res, err := core.Load([]byte(doc)).Run(prog)
			if err != nil {
				t.Fatalf("evaluating %q on %q: %v", q, doc, err)
			}
			for _, ds := range syns {
				can := ds.syn.CanMatch(synopsis.Resolve(prog.Sig, ds.dict))
				if !can {
					prunedTotal++
				}
				if res.SelectedTree > 0 && !can {
					t.Fatalf("UNSOUND: query %q selects %d nodes on %q but synopsis (depth %d) pruned it\nsignature: %+v",
						q, res.SelectedTree, doc, ds.syn.Depth(), prog.Sig)
				}
			}
			if res.SelectedTree > 0 {
				nonEmpty++
			}
		}
	}
	// The run must actually exercise both sides of the property.
	if nonEmpty == 0 {
		t.Fatal("no generated query matched anything; the property was vacuous")
	}
	if prunedTotal == 0 {
		t.Fatal("no generated query was ever pruned; the property was vacuous")
	}
}
