// Package repro's root benchmark suite regenerates every table and figure
// of the paper's evaluation as testing.B benchmarks (see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for paper-vs-measured numbers):
//
//	BenchmarkFig6Compression      Figure 6  — compression per corpus
//	BenchmarkFig7Queries          Figure 7  — parse + eval per corpus/query
//	BenchmarkFigure5              Figure 5  — queries on the compressed binary tree
//	BenchmarkDecompressionGrowth  Thm 3.6   — chained downward steps
//	BenchmarkUpwardOnly           Cor 3.7   — tree-pattern queries, no decompression
//	BenchmarkRelationalCompression Intro     — R x C table sweep
//	BenchmarkCompressedVsBaseline Section 6 — engine vs uncompressed tree
//	BenchmarkAblation*            design choices called out in DESIGN.md
package repro

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/baseline"
	"repro/internal/codec"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dag"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/shred"
	"repro/internal/skeleton"
	"repro/internal/store"
	"repro/internal/xpath"
)

// benchScale shrinks the corpora so the full suite completes quickly; the
// shapes under study (ratios, growth factors, who-wins) are scale-stable.
const benchScale = 0.25

const benchSeed = 1

// BenchmarkFig6Compression measures skeleton compression per corpus in
// both tag modes, reporting the paper's ratio |E_M(T)|/|E_T| as a metric.
func BenchmarkFig6Compression(b *testing.B) {
	for _, c := range corpus.Catalog() {
		doc := c.Generate(scaled(c.DefaultScale), benchSeed)
		for _, mode := range []struct {
			m    skeleton.TagMode
			name string
		}{{skeleton.TagsNone, "tags-"}, {skeleton.TagsAll, "tags+"}} {
			b.Run(c.Name+"/"+mode.name, func(b *testing.B) {
				b.SetBytes(int64(len(doc)))
				var ratio float64
				for i := 0; i < b.N; i++ {
					inst, st, err := skeleton.BuildCompressed(doc, skeleton.Options{Mode: mode.m})
					if err != nil {
						b.Fatal(err)
					}
					ratio = float64(inst.NumEdges()) / float64(st.TreeVertices-1)
				}
				b.ReportMetric(100*ratio, "ratio%")
			})
		}
	}
}

// BenchmarkFig7Queries measures, per (corpus, query), the two phases of
// Figure 7 separately: parse+compress (column 1) and pure evaluation
// (column 4), with the selected-node counts as metrics (columns 7-8).
func BenchmarkFig7Queries(b *testing.B) {
	for _, c := range corpus.Catalog() {
		if c.Name == "TPC-D" {
			continue
		}
		doc := c.Generate(scaled(c.DefaultScale), benchSeed)
		for qi, q := range c.Queries {
			prog, err := xpath.CompileQuery(q)
			if err != nil {
				b.Fatal(err)
			}
			opts := skeleton.Options{Mode: skeleton.TagsListed, Tags: prog.Tags, Strings: prog.Strings}

			b.Run(fmt.Sprintf("%s/Q%d/parse", c.Name, qi+1), func(b *testing.B) {
				b.SetBytes(int64(len(doc)))
				for i := 0; i < b.N; i++ {
					if _, _, err := skeleton.BuildCompressed(doc, opts); err != nil {
						b.Fatal(err)
					}
				}
			})

			b.Run(fmt.Sprintf("%s/Q%d/eval", c.Name, qi+1), func(b *testing.B) {
				master, _, err := skeleton.BuildCompressed(doc, opts)
				if err != nil {
					b.Fatal(err)
				}
				var res *engine.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					inst := master.Clone() // engine.Run consumes its input
					b.StartTimer()
					res, err = engine.Run(inst, prog)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.SelectedDAG), "sel(dag)")
				b.ReportMetric(float64(res.SelectedTree), "sel(tree)")
				b.ReportMetric(float64(res.VertsAfter-res.VertsBefore), "decompressed")
			})
		}
	}
}

// BenchmarkFigure5 runs the Figure 5 queries on the optimally compressed
// complete binary tree of depth 5.
func BenchmarkFigure5(b *testing.B) {
	var build func(level int) string
	build = func(level int) string {
		tag := "a"
		if level%2 == 1 {
			tag = "b"
		}
		if level == 4 {
			return "<" + tag + "/>"
		}
		sub := build(level + 1)
		return "<" + tag + ">" + sub + sub + "</" + tag + ">"
	}
	doc := []byte(build(0))
	for _, q := range []string{
		`//a`, `//a/b`, `/a`, `/a/a`, `/a/a/b`, `/*`, `/*/a`, `/*/a/following::*`,
	} {
		prog, err := xpath.CompileQuery(q)
		if err != nil {
			b.Fatal(err)
		}
		master, _, err := skeleton.BuildCompressed(doc, skeleton.Options{
			Mode: skeleton.TagsListed, Tags: prog.Tags, Strings: prog.Strings,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(q, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				inst := master.Clone()
				b.StartTimer()
				if _, err := engine.Run(inst, prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecompressionGrowth measures the Theorem 3.6 shape on a
// compressed complete binary tree: benign downward chains cause no
// decompression, while k independent ancestor sibling-position conditions
// grow the instance ~2^k-fold — yet stay bounded by the uncompressed tree.
func BenchmarkDecompressionGrowth(b *testing.B) {
	for _, k := range []int{1, 2, 4, 6, 8, 10} {
		b.Run(fmt.Sprintf("steps=%d", k), func(b *testing.B) {
			var benign, adv []experiments.GrowthPoint
			for i := 0; i < b.N; i++ {
				var err error
				benign, adv, err = experiments.DecompressionGrowth(16, k)
				if err != nil {
					b.Fatal(err)
				}
			}
			lb, la := benign[len(benign)-1], adv[len(adv)-1]
			b.ReportMetric(float64(lb.VertsAfter)/float64(lb.VertsBefore), "benign-x")
			b.ReportMetric(float64(la.VertsAfter)/float64(la.VertsBefore), "adversarial-x")
		})
	}
}

// BenchmarkUpwardOnly exercises Corollary 3.7: tree-pattern (Q1-style)
// queries run on the compressed instance with zero decompression.
func BenchmarkUpwardOnly(b *testing.B) {
	c, err := corpus.ByName("SwissProt")
	if err != nil {
		b.Fatal(err)
	}
	doc := c.Generate(scaled(c.DefaultScale), benchSeed)
	prog, err := xpath.CompileQuery(c.Queries[0])
	if err != nil {
		b.Fatal(err)
	}
	master, _, err := skeleton.BuildCompressed(doc, skeleton.Options{
		Mode: skeleton.TagsListed, Tags: prog.Tags, Strings: prog.Strings,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		inst := master.Clone()
		b.StartTimer()
		res, err := engine.Run(inst, prog)
		if err != nil {
			b.Fatal(err)
		}
		if res.VertsAfter != res.VertsBefore {
			b.Fatal("upward-only query decompressed the instance")
		}
	}
}

// BenchmarkRelationalCompression sweeps the introduction's R x C table:
// compressed size must not grow with R.
func BenchmarkRelationalCompression(b *testing.B) {
	for _, rows := range []int{100, 1000, 10000, 100000} {
		doc := corpus.RelationalTable(rows, 8)
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			var edges int
			for i := 0; i < b.N; i++ {
				inst, _, err := skeleton.BuildCompressed(doc, skeleton.Options{Mode: skeleton.TagsAll})
				if err != nil {
					b.Fatal(err)
				}
				edges = inst.NumEdges()
			}
			b.ReportMetric(float64(edges), "dagEdges")
		})
	}
}

// BenchmarkCompressedVsBaseline compares pure evaluation time of the
// compressed-instance engine against the uncompressed pointer-tree
// evaluator (Section 6: "such engines have to repetitively re-compute the
// same results on subtrees that are shared in our compressed instances").
func BenchmarkCompressedVsBaseline(b *testing.B) {
	for _, name := range []string{"SwissProt", "DBLP", "TreeBank", "Baseball"} {
		c, err := corpus.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		doc := c.Generate(scaled(c.DefaultScale), benchSeed)
		for qi, q := range c.Queries {
			prog, err := xpath.CompileQuery(q)
			if err != nil {
				b.Fatal(err)
			}
			master, _, err := skeleton.BuildCompressed(doc, skeleton.Options{
				Mode: skeleton.TagsListed, Tags: prog.Tags, Strings: prog.Strings,
			})
			if err != nil {
				b.Fatal(err)
			}
			tree, err := baseline.Build(doc, prog.Strings)
			if err != nil {
				b.Fatal(err)
			}

			b.Run(fmt.Sprintf("%s/Q%d/compressed", name, qi+1), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					inst := master.Clone()
					b.StartTimer()
					if _, err := engine.Run(inst, prog); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/Q%d/baseline", name, qi+1), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := baseline.Eval(tree, prog); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationOnePassVsPostCompress compares the two compression
// strategies DESIGN.md calls out: hash-consing during the parse (the
// paper's one-pass algorithm) versus building the full tree first and
// compressing afterwards.
func BenchmarkAblationOnePassVsPostCompress(b *testing.B) {
	c, err := corpus.ByName("SwissProt")
	if err != nil {
		b.Fatal(err)
	}
	doc := c.Generate(scaled(c.DefaultScale), benchSeed)
	opts := skeleton.Options{Mode: skeleton.TagsAll}

	b.Run("one-pass", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			if _, _, err := skeleton.BuildCompressed(doc, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("post-compress", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			tree, _, err := skeleton.BuildTree(doc, opts)
			if err != nil {
				b.Fatal(err)
			}
			dag.Compress(tree)
		}
	})
}

// BenchmarkAblationSharedSubtreeReuse measures the "compute once per
// shared subtree" effect directly: the same algebra on the compressed DAG
// versus on the fully uncompressed tree instance.
func BenchmarkAblationSharedSubtreeReuse(b *testing.B) {
	c, err := corpus.ByName("Baseball")
	if err != nil {
		b.Fatal(err)
	}
	doc := c.Generate(scaled(c.DefaultScale)+2, benchSeed)
	prog, err := xpath.CompileQuery(c.Queries[1]) // Q2: plain downward path
	if err != nil {
		b.Fatal(err)
	}
	opts := skeleton.Options{Mode: skeleton.TagsListed, Tags: prog.Tags, Strings: prog.Strings}

	compressed, _, err := skeleton.BuildCompressed(doc, opts)
	if err != nil {
		b.Fatal(err)
	}
	uncompressed, _, err := skeleton.BuildTree(doc, opts)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("dag", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			inst := compressed.Clone()
			b.StartTimer()
			if _, err := engine.Run(inst, prog); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			inst := uncompressed.Clone()
			b.StartTimer()
			if _, err := engine.Run(inst, prog); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShreddedAssembly measures the Section 6 chunked-storage path:
// shredding a document into per-record-group chunks and grafting them back
// into one compressed instance, versus the direct whole-document build.
func BenchmarkShreddedAssembly(b *testing.B) {
	c, err := corpus.ByName("DBLP")
	if err != nil {
		b.Fatal(err)
	}
	doc := c.Generate(scaled(c.DefaultScale), benchSeed)
	opts := skeleton.Options{Mode: skeleton.TagsAll}

	b.Run("direct", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			if _, _, err := skeleton.BuildCompressed(doc, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shred", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			if _, err := shred.Shred(doc, opts, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
	shredded, err := shred.Shred(doc, opts, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("assemble", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := shredded.Assemble(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMinimizers compares the two M(I) algorithms: the
// paper's one-table hash-consing (Proposition 2.6) versus the footnote-3
// height-stratified partition refinement.
func BenchmarkAblationMinimizers(b *testing.B) {
	for _, name := range []string{"SwissProt", "TreeBank"} {
		c, err := corpus.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		doc := c.Generate(scaled(c.DefaultScale), benchSeed)
		tree, _, err := skeleton.BuildTree(doc, skeleton.Options{Mode: skeleton.TagsAll})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/hash-consing", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dag.Compress(tree)
			}
		})
		b.Run(name+"/stratified", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dag.CompressStratified(tree)
			}
		})
	}
}

// BenchmarkAblationRecompress measures re-minimisation after query
// evaluation — the operation Section 3.3 predicts "will rarely pay off".
func BenchmarkAblationRecompress(b *testing.B) {
	c, err := corpus.ByName("XMark")
	if err != nil {
		b.Fatal(err)
	}
	doc := c.Generate(scaled(c.DefaultScale), benchSeed)
	prog, err := xpath.CompileQuery(c.Queries[1])
	if err != nil {
		b.Fatal(err)
	}
	master, _, err := skeleton.BuildCompressed(doc, skeleton.Options{
		Mode: skeleton.TagsListed, Tags: prog.Tags, Strings: prog.Strings,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := engine.Run(master.Clone(), prog)
	if err != nil {
		b.Fatal(err)
	}
	grown := res.Instance
	b.Run("recompress", func(b *testing.B) {
		var shrunk int
		for i := 0; i < b.N; i++ {
			shrunk = dag.Compress(grown).NumVertices()
		}
		b.ReportMetric(float64(grown.NumVertices()-shrunk), "vertsSaved")
	})
}

// BenchmarkArchive measures the storage layer: splitting a document into
// skeleton + containers, binary encoding, decoding, and reconstruction.
func BenchmarkArchive(b *testing.B) {
	c, err := corpus.ByName("DBLP")
	if err != nil {
		b.Fatal(err)
	}
	doc := c.Generate(scaled(c.DefaultScale), benchSeed)

	b.Run("split", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			if _, err := container.Split(doc); err != nil {
				b.Fatal(err)
			}
		}
	})

	arch, err := container.Split(doc)
	if err != nil {
		b.Fatal(err)
	}
	var packed bytes.Buffer
	if err := codec.EncodeArchive(&packed, arch); err != nil {
		b.Fatal(err)
	}

	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := codec.EncodeArchive(&buf, arch); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(100*float64(packed.Len())/float64(len(doc)), "packed%")
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			if _, err := codec.DecodeArchive(bytes.NewReader(packed.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reconstruct", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			var out bytes.Buffer
			if err := arch.Reconstruct(&out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPreparedVsReparse compares the Section 4 evaluation modes: the
// prototype's reparse-per-query versus the cached instance merged with
// per-query string conditions via common extensions.
func BenchmarkPreparedVsReparse(b *testing.B) {
	c, err := corpus.ByName("SwissProt")
	if err != nil {
		b.Fatal(err)
	}
	docBytes := c.Generate(scaled(c.DefaultScale), benchSeed)
	doc := core.Load(docBytes)
	prep, err := doc.Prepare()
	if err != nil {
		b.Fatal(err)
	}
	for qi, q := range c.Queries {
		prog, err := core.Compile(q)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Q%d/reparse", qi+1), func(b *testing.B) {
			b.SetBytes(int64(len(docBytes)))
			for i := 0; i < b.N; i++ {
				if _, err := doc.Run(prog); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Q%d/prepared", qi+1), func(b *testing.B) {
			b.SetBytes(int64(len(docBytes)))
			for i := 0; i < b.N; i++ {
				if _, err := prep.Run(prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOverlayVsClone pits the zero-clone read path (Prepared.Run:
// shared frozen base + pooled per-query overlay) against the pre-overlay
// serving mode (deep-clone the base, run the consuming engine on the
// copy) for every tag-only corpus query. allocs/op is the headline
// number: the clone path allocates O(|document|) per query, the overlay
// path O(|result|).
func BenchmarkOverlayVsClone(b *testing.B) {
	c, err := corpus.ByName("SwissProt")
	if err != nil {
		b.Fatal(err)
	}
	doc := core.Load(c.Generate(scaled(c.DefaultScale), benchSeed))
	prep, err := doc.Prepare()
	if err != nil {
		b.Fatal(err)
	}
	for qi, q := range c.Queries {
		prog, err := core.Compile(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(prog.Strings) > 0 {
			continue // the clone path lacks string marks on a tag base
		}
		b.Run(fmt.Sprintf("Q%d/clone", qi+1), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(prep.CloneBase(), prog); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Q%d/overlay", qi+1), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := prep.Run(prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkResultPaths measures decoding a selection back to tree
// addresses (Figure 7 column 8's traversal).
func BenchmarkResultPaths(b *testing.B) {
	c, err := corpus.ByName("DBLP")
	if err != nil {
		b.Fatal(err)
	}
	doc := core.Load(c.Generate(scaled(c.DefaultScale), benchSeed))
	res, err := doc.Query(c.Queries[1])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths := res.Paths(1 << 20)
		if uint64(len(paths)) != res.SelectedTree {
			b.Fatalf("paths = %d, want %d", len(paths), res.SelectedTree)
		}
	}
}

// BenchmarkParallelQuery measures engine.RunParallel fanning one compiled
// query out over a corpus of documents, sweeping the worker count. On
// multi-core hardware the wall-clock per op should drop ~linearly up to
// the core count (the shards share nothing but the read-only program); on
// a single core all worker counts converge. SwissProt is the largest
// generated corpus; Q3 mixes a descendant axis with a string condition.
func BenchmarkParallelQuery(b *testing.B) {
	c, err := corpus.ByName("SwissProt")
	if err != nil {
		b.Fatal(err)
	}
	const docs = 8
	prog, err := xpath.CompileQuery(c.Queries[2])
	if err != nil {
		b.Fatal(err)
	}
	insts := make([]*dag.Instance, docs)
	var bytesTotal int64
	for i := range insts {
		doc := c.Generate(scaled(c.DefaultScale), benchSeed+uint64(i))
		bytesTotal += int64(len(doc))
		inst, _, err := skeleton.BuildCompressed(doc, skeleton.Options{
			Mode: skeleton.TagsListed, Tags: prog.Tags, Strings: prog.Strings,
		})
		if err != nil {
			b.Fatal(err)
		}
		insts[i] = inst
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(bytesTotal)
			var selected uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				clones := make([]*dag.Instance, len(insts))
				for j, inst := range insts {
					clones[j] = inst.Clone()
				}
				b.StartTimer()
				merged, err := engine.RunParallel(clones, prog, workers)
				if err != nil {
					b.Fatal(err)
				}
				selected = merged.SelectedTree
			}
			b.ReportMetric(float64(selected), "selected")
		})
	}
}

// BenchmarkParallelCompress measures dag.CompressParallel (the sharded
// hash-consing builder fed by level waves) against the sequential
// minimiser on an uncompressed SwissProt skeleton.
func BenchmarkParallelCompress(b *testing.B) {
	c, err := corpus.ByName("SwissProt")
	if err != nil {
		b.Fatal(err)
	}
	doc := c.Generate(scaled(c.DefaultScale), benchSeed)
	tree, _, err := skeleton.BuildTree(doc, skeleton.Options{Mode: skeleton.TagsAll})
	if err != nil {
		b.Fatal(err)
	}
	want := dag.Compress(tree.Clone()).NumVertices()
	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			in := tree.Clone()
			b.StartTimer()
			if got := dag.Compress(in).NumVertices(); got != want {
				b.Fatalf("compressed to %d vertices, want %d", got, want)
			}
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				in := tree.Clone()
				b.StartTimer()
				if got := dag.CompressParallel(in, workers).NumVertices(); got != want {
					b.Fatalf("compressed to %d vertices, want %d", got, want)
				}
			}
		})
	}
}

// BenchmarkStoreQuery measures the archive-store serving path on the
// largest generated corpus (SwissProt): every corpus query fanned over a
// packed store with warm caches versus parse-per-query evaluation of the
// same XML at the same parallelism. The acceptance target is warm serving
// >= 5x faster than re-parsing for every query — tag-only queries clone
// the cached instance, and string-condition queries hit the prepared
// merged-instance memo, so neither touches XML (or even the containers).
func BenchmarkStoreQuery(b *testing.B) {
	c, err := corpus.ByName("SwissProt")
	if err != nil {
		b.Fatal(err)
	}
	const docs = 4
	dir := b.TempDir()
	pool := core.NewPool(0)
	var totalBytes int64
	for i := 0; i < docs; i++ {
		doc := c.Generate(scaled(c.DefaultScale), benchSeed+uint64(i))
		totalBytes += int64(len(doc))
		pool.Add(fmt.Sprintf("doc%d", i), doc)
		a, err := container.Split(doc)
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := codec.EncodeArchive(&buf, a); err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("doc%d%s", i, store.Ext)), buf.Bytes(), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for qi, q := range c.Queries {
		if _, err := s.QueryAll(q); err != nil { // warm caches
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Q%d/reparse", qi+1), func(b *testing.B) {
			b.SetBytes(totalBytes)
			for i := 0; i < b.N; i++ {
				if _, err := pool.QueryAll(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Q%d/store", qi+1), func(b *testing.B) {
			b.SetBytes(totalBytes)
			for i := 0; i < b.N; i++ {
				if _, err := s.QueryAll(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func scaled(base int) int {
	n := int(float64(base) * benchScale)
	if n < 1 {
		n = 1
	}
	return n
}
