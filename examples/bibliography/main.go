// Bibliography: query a DBLP-like database at realistic scale. Shows
// compile-once/run-many usage, the reverse-axis plan a query compiles to,
// and how little the compressed instance grows under evaluation.
//
//	go run ./examples/bibliography
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/skeleton"
)

func main() {
	// ~20k publications, ~140k elements.
	c, err := corpus.ByName("DBLP")
	if err != nil {
		log.Fatal(err)
	}
	data := c.Generate(20000, 42)
	doc := core.Load(data)

	st, err := doc.Stats(skeleton.TagsAll)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d bytes, %d elements; compressed skeleton: %d vertices / %d edges (%.1f%%)\n\n",
		len(data), st.TreeVertices, st.DagVertices, st.DagEdges, 100*st.Ratio)

	// Compile once; the program lists which relations it needs.
	prog, err := core.Compile(`/dblp/article[author["Chandra"] and author["Harel"]]/title`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query needs tags %v and string conditions %v\n", prog.Tags, prog.Strings)
	fmt.Println("compiled plan (conditions run with reversed, upward axes):")
	fmt.Print(prog.String())

	res, err := doc.Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nco-authored titles: %d (parse %v, eval %v; instance %d->%d vertices)\n\n",
		res.SelectedTree, res.ParseTime, res.EvalTime, res.VertsBefore, res.VertsAfter)

	// A batch of typical bibliographic lookups.
	for _, q := range []string{
		`//article[author["Codd"]]`,
		`//inproceedings[booktitle["VLDB"]]/title`,
		`/dblp/article[author["Chandra" and following-sibling::author["Harel"]]]/title`,
		`//article[not(url)]`,
	} {
		res, err := doc.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-72s -> %6d node(s) in %v\n", q, res.SelectedTree, res.EvalTime)
	}
}
