// Store: the storage side of the architecture — split a document into a
// compressed skeleton plus XMILL-style value containers, persist it in the
// binary archive format, load it back, reconstruct the XML, and run
// repeated queries against a prepared (cached) document using the common-
// extension merge instead of re-parsing.
//
//	go run ./examples/store
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/codec"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/corpus"
)

func main() {
	c, err := corpus.ByName("Baseball")
	if err != nil {
		log.Fatal(err)
	}
	data := c.Generate(4, 9)
	fmt.Printf("document: %d bytes\n", len(data))

	// 1. Split into skeleton + containers.
	a, err := container.Split(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skeleton: %d vertices, %d edges (tree size %d); %d containers, %d value bytes\n",
		a.Skeleton.NumVertices(), a.Skeleton.NumEdges(), a.Skeleton.TreeSize(),
		a.Store.NumContainers(), a.Store.TotalBytes())

	// 2. Persist to the binary archive format and load it back.
	var packed bytes.Buffer
	if err := codec.EncodeArchive(&packed, a); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive:  %d bytes on disk (%.1f%% of the XML)\n",
		packed.Len(), 100*float64(packed.Len())/float64(len(data)))
	loaded, err := codec.DecodeArchive(bytes.NewReader(packed.Bytes()))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Reconstruct the document from the archive.
	var rebuilt bytes.Buffer
	if err := loaded.Reconstruct(&rebuilt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed: %d bytes of XML\n\n", rebuilt.Len())

	// 4. Query the reconstructed document through a prepared handle:
	// the tag skeleton is compressed once; string conditions are
	// distilled per query and merged in via the common-extension
	// algorithm (Section 2.3 of the paper).
	doc := core.Load(rebuilt.Bytes())
	prep, err := doc.Prepare()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared instance: %d vertices, %d edges\n", prep.BaseVertices(), prep.BaseEdges())
	for _, q := range []string{
		`/SEASON/LEAGUE/DIVISION/TEAM/PLAYER`,          // tag-only: no parse at all
		`//PLAYER[THROWS["Right"]]`,                    // string condition: distil + merge
		`//TEAM[TEAM_CITY["Atlanta"]]/PLAYER/POSITION`, // both
	} {
		res, err := prep.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-46s -> %5d node(s)  (prep %v, eval %v)\n",
			q, res.SelectedTree, res.ParseTime.Round(1000), res.EvalTime.Round(1000))
	}
}
