// Store: the storage side of the architecture — split documents into
// compressed skeletons plus XMILL-style value containers, persist them as
// a directory of archives, and serve repeated queries from the archive
// store: lazy decode into an LRU cache, string conditions distilled by
// replaying archive events, no XML anywhere on the serve path. This is
// the library face of what cmd/xcserve exposes over HTTP.
//
//	go run ./examples/store
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/codec"
	"repro/internal/container"
	"repro/internal/corpus"
	"repro/internal/store"
)

func main() {
	// All work happens in run so that errors exit through a normal
	// return path and the deferred temp-dir cleanup actually runs.
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "xca-example")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// 1. Pack a small corpus of documents into name.xca archives
	// (cmd/xcarchive's pack-dir mode does this from *.xml files).
	for _, seed := range []uint64{9, 10, 11} {
		c, err := corpus.ByName("Baseball")
		if err != nil {
			return err
		}
		data := c.Generate(4, seed)
		a, err := container.Split(data)
		if err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("season-%d%s", seed, store.Ext)))
		if err != nil {
			return err
		}
		if err := codec.EncodeArchive(f, a); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("packed season-%d: %d bytes of XML -> archive (skeleton %d vertices, %d containers)\n",
			seed, len(data), a.Skeleton.NumVertices(), a.Store.NumContainers())
	}

	// 2. Open the directory as a store: archives are catalogued now and
	// decoded lazily, on first query, into a byte-budgeted LRU cache.
	s, err := store.Open(dir, store.Options{CacheBytes: 64 << 20})
	if err != nil {
		return err
	}
	fmt.Printf("\nstore: %d document(s): %v\n\n", s.Len(), s.Names())

	// 3. Serve queries. Tag-only queries clone the cached instance;
	// string conditions are distilled from the value containers (and then
	// memoised), so the XML is never re-parsed — it never even exists.
	for _, q := range []string{
		`/SEASON/LEAGUE/DIVISION/TEAM/PLAYER`,          // tag-only: clone + evaluate
		`//PLAYER[THROWS["Right"]]`,                    // string condition: distil from containers + merge
		`//TEAM[TEAM_CITY["Atlanta"]]/PLAYER/POSITION`, // both
	} {
		results, err := s.QueryAll(q)
		if err != nil {
			return err
		}
		var total uint64
		for _, r := range results {
			if r.Err != nil {
				return r.Err
			}
			total += r.Result.SelectedTree
		}
		fmt.Printf("%-46s -> %5d node(s) across %d docs\n", q, total, len(results))
	}

	st := s.Stats()
	fmt.Printf("\ncache: %d/%d docs decoded (%d decode(s), %d hit(s)); %d queries served\n",
		st.Loaded, st.Docs, st.DocMisses, st.DocHits, st.Queries)
	return nil
}
