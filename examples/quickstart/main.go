// Quickstart: load an XML document, run Core XPath queries on its
// compressed skeleton, and inspect what the compression did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/skeleton"
)

// The bibliographic database of the paper's Example 1.1.
const bib = `<bib>
  <book>
    <title>Foundations of Databases</title>
    <author>Abiteboul</author><author>Hull</author><author>Vianu</author>
  </book>
  <paper>
    <title>A Relational Model for Large Shared Data Banks</title>
    <author>Codd</author>
  </paper>
  <paper>
    <title>The Complexity of Relational Query Languages</title>
    <author>Vardi</author>
  </paper>
</bib>`

func main() {
	doc := core.Load([]byte(bib))

	// How well does the skeleton compress? (Figure 1 of the paper: the
	// 12-node tree shares its subtrees into a handful of DAG vertices.)
	st, err := doc.Stats(skeleton.TagsAll)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skeleton: %d tree nodes -> %d DAG vertices, %d edges (%.0f%% of the tree)\n\n",
		st.TreeVertices, st.DagVertices, st.DagEdges, 100*st.Ratio)

	// Run a few queries. Each evaluates directly on the compressed
	// instance; downward steps may partially decompress it.
	queries := []string{
		`//author`,
		`/bib/book/author`,
		`//paper[author["Codd"]]/title`,
		`//paper[not(author["Codd"])]`,
		`//book/following-sibling::paper`,
		`/self::*[bib/book/author]`, // tree-pattern query: selects the root if the path exists
	}
	for _, q := range queries {
		res, err := doc.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s -> %d node(s)  [instance %d->%d vertices, eval %v]\n",
			q, res.SelectedTree, res.VertsBefore, res.VertsAfter, res.EvalTime)
	}

	// Decode a result back to tree addresses and pull the matching
	// subtrees straight out of the compressed archive.
	res, err := doc.Query(`//paper/title`)
	if err != nil {
		log.Fatal(err)
	}
	arch, err := container.Split([]byte(bib))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmatches for //paper/title:")
	for _, addr := range res.Paths(10) {
		sub, err := arch.ExtractSubtree(addr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  node %-6s %s\n", addr, sub)
	}
}
