// Compression: a tour of the compressed-instance machinery itself —
// the relational-table asymptotics from the paper's introduction, explicit
// decompression (T(I)), minimality, equivalence, and merging two labelings
// of one document with the common-extension construction (Section 2.3).
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/skeleton"
)

func main() {
	// 1. The introduction's observation: an R x C relational table has an
	// O(C*R) skeleton but an O(C) compressed instance (O(C + log R)
	// counting the bits of the edge multiplicity).
	fmt.Println("R x 8 relational tables:")
	for _, rows := range []int{10, 1000, 100000} {
		docBytes := corpus.RelationalTable(rows, 8)
		inst, st, err := skeleton.BuildCompressed(docBytes, skeleton.Options{Mode: skeleton.TagsAll})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  R=%6d: tree %8d nodes -> dag %2d vertices, %2d edges\n",
			rows, st.TreeVertices, inst.NumVertices(), inst.NumEdges())
	}

	// 2. Explicit decompression and the equivalence lattice.
	docXML := []byte(`<bib><book><title/><author/><author/></book><paper><title/><author/></paper><paper><title/><author/></paper></bib>`)
	m, _, err := skeleton.BuildCompressed(docXML, skeleton.Options{Mode: skeleton.TagsAll})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 1 document: minimal=%v, %d vertices, tree size %d\n",
		dag.Minimal(m), m.NumVertices(), m.TreeSize())
	tree, err := dag.Decompress(m, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decompressed T(I): %d vertices, is tree: %v, equivalent to I: %v\n",
		tree.NumVertices(), dag.IsTree(tree), dag.Equivalent(m, tree))

	// 3. Common extensions: merge two independently built labelings of
	// the same document (e.g. a cached subquery result and a fresh
	// string-index lookup) into one instance carrying both.
	authorsOnly, _, err := skeleton.BuildCompressed(docXML, skeleton.Options{
		Mode: skeleton.TagsListed, Tags: []string{"author"},
	})
	if err != nil {
		log.Fatal(err)
	}
	titlesOnly, _, err := skeleton.BuildCompressed(docXML, skeleton.Options{
		Mode: skeleton.TagsListed, Tags: []string{"title"},
	})
	if err != nil {
		log.Fatal(err)
	}
	ext, err := dag.CommonExtension(authorsOnly, titlesOnly)
	if err != nil {
		log.Fatal(err)
	}
	aID := ext.Schema.Lookup(skeleton.TagLabel("author"))
	tID := ext.Schema.Lookup(skeleton.TagLabel("title"))
	fmt.Printf("\ncommon extension of {author}- and {title}-labelings: %d vertices\n", ext.NumVertices())
	fmt.Printf("  authors: %d, titles: %d (tree nodes)\n",
		ext.CountSelectedTree(aID), ext.CountSelectedTree(tID))

	// 4. Reducts project labelings away again.
	red := ext.Reduct([]label.ID{aID})
	fmt.Printf("  reduct to {author} equivalent to the author labeling: %v\n",
		dag.Equivalent(red, authorsOnly))
}
