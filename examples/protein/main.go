// Protein: SwissProt-style record retrieval with string conditions,
// demonstrating how string matches become node relations at parse time,
// how shared record structure splits only where matches differ, and the
// Figure 7 accounting of partial decompression.
//
//	go run ./examples/protein
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
)

func main() {
	c, err := corpus.ByName("SwissProt")
	if err != nil {
		log.Fatal(err)
	}
	data := c.Generate(5000, 7)
	doc := core.Load(data)
	fmt.Printf("protein database: %d bytes\n\n", len(data))

	type row struct {
		name  string
		query string
	}
	for _, r := range []row{
		{"records with eukaryotic taxonomy", `//Record/protein[taxo["Eukaryota"]]`},
		{"rat proteins with a marker peptide", `//Record[sequence/seq["MMSARGDFLN"] and protein/from["Rattus norvegicus"]]`},
		{"tissue-specificity followed by dev. stage", `//Record/comment[topic["TISSUE SPECIFICITY"] and following-sibling::comment/topic["DEVELOPMENTAL STAGE"]]`},
		{"records lacking features", `//Record[not(feature)]`},
		{"journals cited from disease records", `//Record[comment/topic["DISEASE"]]/reference/journal`},
	} {
		res, err := doc.Query(r.query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n  %s\n", r.name, r.query)
		fmt.Printf("  selected %d tree nodes via %d DAG vertices; instance %d->%d vertices (parse %v, eval %v)\n\n",
			res.SelectedTree, res.SelectedDAG, res.VertsBefore, res.VertsAfter,
			res.ParseTime.Round(1e5), res.EvalTime.Round(1e3))
	}
}
